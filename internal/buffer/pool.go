// Package buffer implements the buffer pool: an object cache over a page
// store with pinning, clock eviction and write-ahead-log-rule enforcement.
//
// The pool caches deserialized node objects rather than raw page frames: the
// tree pins an object, latches it, works on it, and unpins it. Eviction only
// considers unpinned objects, so a latch can never outlive its node's
// residency. Before a dirty page is written back, the log is flushed up to
// the page's LSN (the WAL rule).
//
// The paper leans on the cache in two places: latch coupling is cheap
// because "most internal nodes are in the database's main memory cache"
// (§2.4), and D_D lives inside parent-of-leaf nodes so it persists across
// cache eviction (§4.1.2) — which is why eviction must marshal the node
// including its D_D counter.
package buffer

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"blinktree/internal/page"
	"blinktree/internal/storage"
	"blinktree/internal/wal"
)

// Object is a cacheable, serializable page object. The tree's node type
// implements it.
type Object interface {
	// PageLSN returns the LSN of the last logged change to this page; the
	// pool flushes the log up to it before write-back.
	PageLSN() wal.LSN
	// Marshal serializes the object into exactly pageSize bytes.
	Marshal(pageSize int) ([]byte, error)
}

// Codec deserializes page images into Objects.
type Codec interface {
	Unmarshal(data []byte) (Object, error)
}

// Errors returned by the pool.
var (
	// ErrPoolFull means every frame is pinned and nothing can be evicted.
	ErrPoolFull = errors.New("buffer: all frames pinned")
)

type frameState uint8

const (
	stateLoading frameState = iota
	stateReady
	stateEvicting
	stateFailed
)

// frame is one cached object.
type frame struct {
	id    page.PageID
	state frameState
	obj   Object
	err   error // load error when stateFailed
	pins  int
	dirty bool
	ref   bool // clock reference bit
}

// Stats counts pool activity.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	WriteBacks uint64
	Resident   int
	Pinned     int
}

// Pool is the buffer pool. All methods are safe for concurrent use.
type Pool struct {
	store    storage.Store
	log      *wal.Log // may be nil: volatile configurations skip the WAL rule
	codec    Codec
	capacity int

	mu     sync.Mutex
	cond   *sync.Cond
	frames map[page.PageID]*frame
	clock  []page.PageID // eviction scan order
	hand   int

	hits       atomic.Uint64
	misses     atomic.Uint64
	evictions  atomic.Uint64
	writeBacks atomic.Uint64

	// obs, when set, is told how long page loads and write-backs take.
	// Set once (SetObserver) before the pool sees traffic.
	obs Observer
}

// Observer receives page I/O latencies. *obs.Registry implements it.
type Observer interface {
	PageLoad(d time.Duration)
	WriteBack(d time.Duration)
}

// SetObserver installs o as the pool's I/O observer. It must be called
// before the pool is shared between goroutines.
func (p *Pool) SetObserver(o Observer) { p.obs = o }

// NewPool creates a pool of at most capacity objects over store. log may be
// nil when no write-ahead logging is configured.
func NewPool(store storage.Store, log *wal.Log, codec Codec, capacity int) *Pool {
	if capacity < 1 {
		capacity = 1
	}
	p := &Pool{
		store:    store,
		log:      log,
		codec:    codec,
		capacity: capacity,
		frames:   make(map[page.PageID]*frame, capacity),
	}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Fetch pins the object for id, loading it from the store if absent. The
// caller must Unpin when done.
func (p *Pool) Fetch(id page.PageID) (Object, error) {
	obj, _, err := p.FetchMiss(id)
	return obj, err
}

// FetchMiss is Fetch with a miss report: the bool is true when this call
// loaded the object from the store (a pool miss) rather than finding it
// resident. Span tracing uses it to split fetch time into buffer-hit vs
// page-load stages without a second map lookup.
func (p *Pool) FetchMiss(id page.PageID) (Object, bool, error) {
	p.mu.Lock()
	for {
		f, ok := p.frames[id]
		if ok {
			switch f.state {
			case stateReady:
				f.pins++
				f.ref = true
				p.mu.Unlock()
				p.hits.Add(1)
				return f.obj, false, nil
			case stateLoading, stateEvicting:
				// Someone else is transitioning this frame; wait and retry.
				p.cond.Wait()
			case stateFailed:
				err := f.err
				p.mu.Unlock()
				return nil, false, err
			}
			continue
		}
		// Miss: make room, then claim a loading frame. makeRoomLocked can
		// release the mutex during eviction write-back, so another goroutine
		// may install a frame for this id in the window; re-check and defer
		// to it rather than overwriting its frame (which would split the
		// page's pin accounting across two frames).
		if err := p.makeRoomLocked(); err != nil {
			p.mu.Unlock()
			return nil, false, err
		}
		if _, ok := p.frames[id]; !ok {
			break
		}
	}
	f := &frame{id: id, state: stateLoading, pins: 1, ref: true}
	p.frames[id] = f
	p.clock = append(p.clock, id)
	p.mu.Unlock()
	p.misses.Add(1)

	var t0 time.Time
	if p.obs != nil {
		t0 = time.Now()
	}
	data, err := p.store.Read(id)
	var obj Object
	if err == nil {
		obj, err = p.codec.Unmarshal(data)
	}
	if p.obs != nil {
		p.obs.PageLoad(time.Since(t0))
	}

	p.mu.Lock()
	if err != nil {
		f.state = stateFailed
		f.err = err
		f.pins = 0
		delete(p.frames, id)
		p.removeFromClock(id)
		p.cond.Broadcast()
		p.mu.Unlock()
		return nil, true, err
	}
	f.obj = obj
	f.state = stateReady
	p.cond.Broadcast()
	p.mu.Unlock()
	return obj, true, nil
}

// Insert registers a freshly allocated page's object in the pool, pinned and
// dirty. The page must already be allocated in the store.
func (p *Pool) Insert(id page.PageID, obj Object) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.frames[id]; ok {
		return fmt.Errorf("buffer: Insert of resident page %d", id)
	}
	if err := p.makeRoomLocked(); err != nil {
		return err
	}
	// makeRoomLocked can release the mutex mid-eviction; re-check before
	// installing so a concurrently loaded frame is never overwritten.
	if _, ok := p.frames[id]; ok {
		return fmt.Errorf("buffer: Insert of resident page %d", id)
	}
	p.frames[id] = &frame{id: id, state: stateReady, obj: obj, pins: 1, dirty: true, ref: true}
	p.clock = append(p.clock, id)
	return nil
}

// Unpin releases one pin. If dirty is true the object is marked modified and
// will be written back before eviction.
func (p *Pool) Unpin(id page.PageID, dirty bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	f, ok := p.frames[id]
	if !ok || f.pins <= 0 {
		panic(fmt.Sprintf("buffer: Unpin of unpinned page %d", id))
	}
	f.pins--
	if dirty {
		f.dirty = true
	}
	if f.pins == 0 {
		p.cond.Broadcast()
	}
}

// MarkDirty flags a pinned object as modified.
func (p *Pool) MarkDirty(id page.PageID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if f, ok := p.frames[id]; ok && f.pins > 0 {
		f.dirty = true
		return
	}
	panic(fmt.Sprintf("buffer: MarkDirty of unpinned page %d", id))
}

// Discard drops a page from the pool without write-back, for pages being
// deallocated. The caller must hold the only pin.
func (p *Pool) Discard(id page.PageID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	f, ok := p.frames[id]
	if !ok {
		return
	}
	if f.pins > 1 {
		panic(fmt.Sprintf("buffer: Discard of page %d with %d pins", id, f.pins))
	}
	delete(p.frames, id)
	p.removeFromClock(id)
	p.cond.Broadcast()
}

// DiscardIfUnpinned removes id's frame without write-back if no pins are
// outstanding, then runs release (typically the store deallocation) while
// still holding the pool mutex, so a concurrent Fetch cannot reload the
// page's stale image between frame removal and deallocation. It returns
// false (and does not call release) if the frame is pinned; the caller
// retries later. A non-resident page is discarded trivially.
func (p *Pool) DiscardIfUnpinned(id page.PageID, release func() error) (bool, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if f, ok := p.frames[id]; ok {
		if f.pins > 0 || f.state != stateReady {
			return false, nil
		}
		delete(p.frames, id)
		p.removeFromClock(id)
		p.cond.Broadcast()
	}
	if release == nil {
		return true, nil
	}
	return true, release()
}

// makeRoomLocked evicts clean or dirty unpinned frames until there is room
// for one more. Caller holds p.mu.
func (p *Pool) makeRoomLocked() error {
	for len(p.frames) >= p.capacity {
		victim := p.pickVictimLocked()
		if victim == nil {
			return ErrPoolFull
		}
		if err := p.evictLocked(victim); err != nil {
			return err
		}
	}
	return nil
}

// pickVictimLocked runs the clock hand over unpinned ready frames.
func (p *Pool) pickVictimLocked() *frame {
	if len(p.clock) == 0 {
		return nil
	}
	// Two sweeps: the first clears reference bits, the second takes the
	// first unpinned frame.
	for sweep := 0; sweep < 2*len(p.clock); sweep++ {
		if p.hand >= len(p.clock) {
			p.hand = 0
		}
		id := p.clock[p.hand]
		p.hand++
		f := p.frames[id]
		if f == nil || f.state != stateReady || f.pins > 0 {
			continue
		}
		if f.ref {
			f.ref = false
			continue
		}
		return f
	}
	return nil
}

// evictLocked writes back a dirty victim (honoring the WAL rule) and removes
// it. Caller holds p.mu; the mutex is released around I/O.
func (p *Pool) evictLocked(f *frame) error {
	f.state = stateEvicting
	id, obj, dirty := f.id, f.obj, f.dirty
	p.mu.Unlock()

	var err error
	if dirty {
		err = p.writeBack(id, obj)
	}

	p.mu.Lock()
	if err != nil {
		f.state = stateReady
		p.cond.Broadcast()
		return err
	}
	delete(p.frames, id)
	p.removeFromClock(id)
	p.evictions.Add(1)
	p.cond.Broadcast()
	return nil
}

// writeBack marshals and writes one object, flushing the log first.
func (p *Pool) writeBack(id page.PageID, obj Object) error {
	var t0 time.Time
	if p.obs != nil {
		t0 = time.Now()
		defer func() { p.obs.WriteBack(time.Since(t0)) }()
	}
	if p.log != nil {
		if err := p.log.Flush(obj.PageLSN()); err != nil {
			return err
		}
	}
	data, err := obj.Marshal(p.store.PageSize())
	if err != nil {
		return err
	}
	if err := p.store.Write(id, data); err != nil {
		return err
	}
	p.writeBacks.Add(1)
	return nil
}

func (p *Pool) removeFromClock(id page.PageID) {
	for i, cid := range p.clock {
		if cid == id {
			p.clock = append(p.clock[:i], p.clock[i+1:]...)
			if p.hand > i {
				p.hand--
			}
			return
		}
	}
}

// FlushAll writes back every dirty resident page (pinned or not) without
// evicting. Used by checkpoints; the caller must ensure no page is being
// modified concurrently (the tree quiesces or holds latches).
func (p *Pool) FlushAll() error {
	p.mu.Lock()
	var dirty []*frame
	for _, f := range p.frames {
		if f.state == stateReady && f.dirty {
			dirty = append(dirty, f)
		}
	}
	p.mu.Unlock()
	for _, f := range dirty {
		if err := p.writeBack(f.id, f.obj); err != nil {
			return err
		}
		p.mu.Lock()
		f.dirty = false
		p.mu.Unlock()
	}
	return nil
}

// Resident reports whether id is currently cached (any state).
func (p *Pool) Resident(id page.PageID) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.frames[id]
	return ok
}

// Snapshot returns current pool statistics.
func (p *Pool) Snapshot() Stats {
	p.mu.Lock()
	pinned := 0
	for _, f := range p.frames {
		if f.pins > 0 {
			pinned++
		}
	}
	resident := len(p.frames)
	p.mu.Unlock()
	return Stats{
		Hits:       p.hits.Load(),
		Misses:     p.misses.Load(),
		Evictions:  p.evictions.Load(),
		WriteBacks: p.writeBacks.Load(),
		Resident:   resident,
		Pinned:     pinned,
	}
}
