package buffer

import (
	"errors"
	"testing"

	"blinktree/internal/storage"
)

func TestDiscardIfUnpinned(t *testing.T) {
	p, store, _ := newTestPool(t, 4)
	id := allocObj(t, p, store, 1)

	// Pinned: refused, release not called.
	if _, err := p.Fetch(id); err != nil {
		t.Fatal(err)
	}
	called := false
	ok, err := p.DiscardIfUnpinned(id, func() error { called = true; return nil })
	if err != nil || ok {
		t.Fatalf("discard of pinned page: ok=%v err=%v", ok, err)
	}
	if called {
		t.Fatal("release called for refused discard")
	}
	p.Unpin(id, false)

	// Unpinned: discarded and released atomically.
	ok, err = p.DiscardIfUnpinned(id, func() error { called = true; return store.Deallocate(id) })
	if err != nil || !ok {
		t.Fatalf("discard of unpinned page: ok=%v err=%v", ok, err)
	}
	if !called {
		t.Fatal("release not called")
	}
	if p.Resident(id) {
		t.Fatal("frame survived discard")
	}
	// A later fetch must fail cleanly (page deallocated under the same
	// pool lock, so no stale reload is possible).
	if _, err := p.Fetch(id); !errors.Is(err, storage.ErrNotAllocated) {
		t.Fatalf("fetch after discard: %v", err)
	}

	// Non-resident page: trivially discarded, release still runs.
	id2, _ := store.Allocate()
	called = false
	ok, err = p.DiscardIfUnpinned(id2, func() error { called = true; return nil })
	if err != nil || !ok || !called {
		t.Fatalf("discard of non-resident page: ok=%v called=%v err=%v", ok, called, err)
	}

	// Nil release is allowed.
	id3 := allocObj(t, p, store, 2)
	if ok, err := p.DiscardIfUnpinned(id3, nil); err != nil || !ok {
		t.Fatalf("discard with nil release: ok=%v err=%v", ok, err)
	}

	// Release error propagates.
	id4 := allocObj(t, p, store, 3)
	wantErr := errors.New("boom")
	if ok, err := p.DiscardIfUnpinned(id4, func() error { return wantErr }); !ok || !errors.Is(err, wantErr) {
		t.Fatalf("release error: ok=%v err=%v", ok, err)
	}
}

func TestWriteBackMarshalError(t *testing.T) {
	store := storage.NewMemStore(128)
	p := NewPool(store, nil, &testCodec{}, 2)
	id, _ := store.Allocate()
	bad := &failingObj{}
	if err := p.Insert(id, bad); err != nil {
		t.Fatal(err)
	}
	p.Unpin(id, true)
	if err := p.FlushAll(); err == nil {
		t.Fatal("FlushAll with failing marshal succeeded")
	}
}

type failingObj struct{ testObj }

func (f *failingObj) Marshal(int) ([]byte, error) {
	return nil, errors.New("marshal failure")
}
