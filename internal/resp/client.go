package resp

import (
	"bufio"
	"fmt"
	"net"
	"time"
)

// Client is a pipelining blinkd client over one TCP connection. It is not
// safe for concurrent use: the load generator gives each worker goroutine
// its own Client, mirroring the server's one-connection-one-session model.
//
// The low-level surface is Send/Flush/Recv — queue any number of commands,
// flush them in one write, then read the replies in order; that is the
// protocol's pipelining contract (PROTOCOL.md). Do and the typed helpers
// (Get, Set, Del, Ping) are one-round-trip conveniences built on it.
type Client struct {
	conn    net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	maxBulk int
	pending int
}

// Dial connects to a blinkd server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// DialTimeout is Dial with a connect timeout.
func DialTimeout(addr string, d time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, d)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	return &Client{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 1<<16),
		bw:   bufio.NewWriterSize(conn, 1<<16),
	}
}

// SetMaxBulk caps the length of a single bulk string this client will
// accept in a reply (0 means DefaultMaxBulk).
func (c *Client) SetMaxBulk(n int) { c.maxBulk = n }

// SetDeadline sets the connection's read+write deadline (zero clears it).
func (c *Client) SetDeadline(t time.Time) error { return c.conn.SetDeadline(t) }

// Close closes the connection. Commands queued but not flushed are lost;
// the server aborts any open transaction when it observes the close.
func (c *Client) Close() error { return c.conn.Close() }

// Pending returns the number of commands sent (or queued) whose replies
// have not been received yet.
func (c *Client) Pending() int { return c.pending }

// Send queues one command in the write buffer without flushing. A large
// buffered batch may be written to the socket early by bufio; that is
// harmless — replies are still read in order by Recv.
func (c *Client) Send(args ...[]byte) error {
	frame := AppendCommand(nil, args...)
	if _, err := c.bw.Write(frame); err != nil {
		return err
	}
	c.pending++
	return nil
}

// SendStr is Send with string arguments.
func (c *Client) SendStr(args ...string) error {
	bs := make([][]byte, len(args))
	for i, a := range args {
		bs[i] = []byte(a)
	}
	return c.Send(bs...)
}

// Flush writes every queued command to the socket.
func (c *Client) Flush() error { return c.bw.Flush() }

// Recv reads the next reply in pipeline order. Error replies are returned
// as a Reply with Kind KindError and a nil error; a non-nil error means
// the transport or framing failed and the connection is unusable.
func (c *Client) Recv() (Reply, error) {
	rep, err := ReadReply(c.br, c.maxBulk)
	if err != nil {
		return Reply{}, err
	}
	c.pending--
	return rep, nil
}

// Do sends one command, flushes, and reads its reply. It must not be
// called with earlier sent-but-unreceived commands outstanding (the reply
// read would not be this command's); Do panics on that misuse.
func (c *Client) Do(args ...[]byte) (Reply, error) {
	if c.pending != 0 {
		panic(fmt.Sprintf("resp: Do with %d pipelined replies outstanding", c.pending))
	}
	if err := c.Send(args...); err != nil {
		return Reply{}, err
	}
	if err := c.Flush(); err != nil {
		return Reply{}, err
	}
	return c.Recv()
}

// DoStr is Do with string arguments.
func (c *Client) DoStr(args ...string) (Reply, error) {
	bs := make([][]byte, len(args))
	for i, a := range args {
		bs[i] = []byte(a)
	}
	return c.Do(bs...)
}

// Ping round-trips a PING and checks for +PONG.
func (c *Client) Ping() error {
	rep, err := c.DoStr("PING")
	if err != nil {
		return err
	}
	if rep.IsError() {
		return rep.Err()
	}
	if rep.Kind != KindSimple || rep.Str != "PONG" {
		return fmt.Errorf("resp: unexpected PING reply %+v", rep)
	}
	return nil
}

// Set round-trips SET key val.
func (c *Client) Set(key, val []byte) error {
	rep, err := c.Do([]byte("SET"), key, val)
	if err != nil {
		return err
	}
	return rep.Err()
}

// Get round-trips GET key; ok is false when the key is absent.
func (c *Client) Get(key []byte) (val []byte, ok bool, err error) {
	rep, err := c.Do([]byte("GET"), key)
	if err != nil {
		return nil, false, err
	}
	if rep.IsError() {
		return nil, false, rep.Err()
	}
	if rep.Null {
		return nil, false, nil
	}
	return rep.Bulk, true, nil
}

// Del round-trips DEL key; deleted is false when the key was absent.
func (c *Client) Del(key []byte) (deleted bool, err error) {
	rep, err := c.Do([]byte("DEL"), key)
	if err != nil {
		return false, err
	}
	if rep.IsError() {
		return false, rep.Err()
	}
	return rep.Int == 1, nil
}
