package resp

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestCommandRoundTrip(t *testing.T) {
	cases := [][][]byte{
		{[]byte("PING")},
		{[]byte("GET"), []byte("k")},
		{[]byte("SET"), []byte("key"), []byte("value with spaces\r\nand CRLF")},
		{[]byte("SET"), []byte{0, 1, 2, 255}, {}},
		{[]byte("SCAN"), []byte(""), []byte(""), []byte("100")},
	}
	for _, args := range cases {
		frame := AppendCommand(nil, args...)
		got, err := ReadCommand(bufio.NewReader(bytes.NewReader(frame)), 0)
		if err != nil {
			t.Fatalf("ReadCommand(%q): %v", frame, err)
		}
		if len(got) != len(args) {
			t.Fatalf("arg count %d, want %d", len(got), len(args))
		}
		for i := range args {
			if !bytes.Equal(got[i], args[i]) {
				t.Fatalf("arg %d = %q, want %q", i, got[i], args[i])
			}
		}
	}
}

func TestCommandErrors(t *testing.T) {
	cases := []struct {
		name, frame string
	}{
		{"bare LF", "*1\n$4\nPING\n"},
		{"not array", "+PING\r\n"},
		{"zero args", "*0\r\n"},
		{"too many args", "*17\r\n"},
		{"negative args", "*-1\r\n"},
		{"leading zero", "*01\r\n"},
		{"null arg", "*1\r\n$-1\r\n"},
		{"bulk too long", "*1\r\n$99999999\r\nx\r\n"},
		{"bulk bad terminator", "*1\r\n$4\r\nPINGXX"},
		{"garbage", "\x00\x01\x02\r\n"},
	}
	for _, c := range cases {
		_, err := ReadCommand(bufio.NewReader(strings.NewReader(c.frame)), 1<<20)
		if !errors.Is(err, ErrProto) {
			t.Errorf("%s: err = %v, want ErrProto", c.name, err)
		}
	}

	// Clean EOF at a boundary is io.EOF; EOF mid-frame is unexpected.
	if _, err := ReadCommand(bufio.NewReader(strings.NewReader("")), 0); err != io.EOF {
		t.Errorf("empty stream: %v, want io.EOF", err)
	}
	if _, err := ReadCommand(bufio.NewReader(strings.NewReader("*2\r\n$4\r\nPING\r\n")), 0); err != io.ErrUnexpectedEOF {
		t.Errorf("truncated frame: %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestReplyRoundTrip(t *testing.T) {
	var frame []byte
	frame = AppendSimple(frame, "OK")
	frame = AppendError(frame, "TXN", "no transaction\r\nopen")
	frame = AppendInt(frame, -42)
	frame = AppendBulk(frame, []byte("value"))
	frame = AppendNull(frame)
	frame = AppendArrayHeader(frame, 2)
	frame = AppendBulk(frame, []byte("k"))
	frame = AppendBulk(frame, []byte("v"))

	r := bufio.NewReader(bytes.NewReader(frame))
	read := func() Reply {
		t.Helper()
		rep, err := ReadReply(r, 0)
		if err != nil {
			t.Fatalf("ReadReply: %v", err)
		}
		return rep
	}

	if rep := read(); rep.Kind != KindSimple || rep.Str != "OK" {
		t.Fatalf("simple = %+v", rep)
	}
	rep := read()
	if !rep.IsError() || rep.ErrorCode() != "TXN" {
		t.Fatalf("error = %+v", rep)
	}
	if strings.ContainsAny(rep.Str, "\r\n") {
		t.Fatalf("error text leaked CRLF: %q", rep.Str)
	}
	var se *ServerError
	if err := rep.Err(); !errors.As(err, &se) || se.Code() != "TXN" {
		t.Fatalf("Err() = %v", err)
	}
	if rep := read(); rep.Kind != KindInt || rep.Int != -42 {
		t.Fatalf("int = %+v", rep)
	}
	if rep := read(); rep.Kind != KindBulk || string(rep.Bulk) != "value" {
		t.Fatalf("bulk = %+v", rep)
	}
	if rep := read(); rep.Kind != KindBulk || !rep.Null {
		t.Fatalf("null = %+v", rep)
	}
	rep = read()
	if rep.Kind != KindArray || len(rep.Array) != 2 ||
		string(rep.Array[0].Bulk) != "k" || string(rep.Array[1].Bulk) != "v" {
		t.Fatalf("array = %+v", rep)
	}
	if _, err := ReadReply(r, 0); err != io.EOF {
		t.Fatalf("end of stream: %v, want io.EOF", err)
	}
}

// FuzzParseCommand feeds arbitrary bytes through the command parser: it
// must never panic, and anything it accepts must re-encode to a frame that
// parses to the same arguments (the codec round-trip invariant the server
// and client both rely on).
func FuzzParseCommand(f *testing.F) {
	f.Add([]byte("*1\r\n$4\r\nPING\r\n"))
	f.Add([]byte("*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$1\r\nv\r\n"))
	f.Add([]byte("*2\r\n$3\r\nGET\r\n$0\r\n\r\n"))
	f.Add([]byte("*4\r\n$4\r\nSCAN\r\n$0\r\n\r\n$0\r\n\r\n$3\r\n100\r\n"))
	f.Add([]byte("*1\r\n$-1\r\n"))
	f.Add([]byte("*0\r\n"))
	f.Add([]byte("+OK\r\n"))
	f.Add([]byte{0xff, 0xfe, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		const maxBulk = 1 << 16
		args, err := ReadCommand(bufio.NewReader(bytes.NewReader(data)), maxBulk)
		if err != nil {
			return
		}
		frame := AppendCommand(nil, args...)
		again, err := ReadCommand(bufio.NewReader(bytes.NewReader(frame)), maxBulk)
		if err != nil {
			t.Fatalf("re-parse of re-encoded frame failed: %v (frame %q)", err, frame)
		}
		if len(again) != len(args) {
			t.Fatalf("round trip arg count %d, want %d", len(again), len(args))
		}
		for i := range args {
			if !bytes.Equal(again[i], args[i]) {
				t.Fatalf("round trip arg %d = %q, want %q", i, again[i], args[i])
			}
		}
	})
}
