// Package resp implements the blinkd wire protocol: a RESP-style framing
// shared by the server (internal/server), the load-generating client
// (internal/bench, blinkbench -remote) and any external tool. The complete
// protocol — framing, verbs, reply types, error codes, pipelining and
// transaction semantics — is specified in PROTOCOL.md at the repository
// root; this package is the codec that document describes.
//
// Requests are arrays of bulk strings ("*<n>\r\n" then n of
// "$<len>\r\n<bytes>\r\n"); replies are simple strings, errors, integers,
// bulk strings (with a null form) and arrays. Encoders are append-style so
// callers can batch many frames into one buffer and write it in a single
// syscall — the pipelining the protocol is designed around.
package resp

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// Protocol limits. They bound memory a peer can demand before any
// application code runs; a frame exceeding them is a protocol error.
const (
	// MaxArgs is the maximum number of elements in a command array
	// (verb included). No blinkd verb takes more than 4.
	MaxArgs = 16
	// DefaultMaxBulk is the default cap on a single bulk string's length,
	// far above anything a 4KiB-page tree accepts but finite.
	DefaultMaxBulk = 8 << 20
	// maxHeaderLine bounds a type-prefix line ("*n", "$n", ":n").
	maxHeaderLine = 32
	// maxTextLine bounds a simple-string or error line.
	maxTextLine = 512
	// maxArrayElems bounds a reply array (a SCAN reply holds 2 elements
	// per record).
	maxArrayElems = 1 << 20
	// maxReplyDepth bounds reply-array nesting; the protocol never nests
	// beyond one level but the reader refuses pathological frames.
	maxReplyDepth = 4
)

// ErrProto marks a malformed frame. Errors returned by the readers wrap it
// (errors.Is(err, ErrProto)); the server answers with a -PROTO error and
// closes the connection.
var ErrProto = errors.New("protocol error")

func protoErrf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrProto, fmt.Sprintf(format, args...))
}

// Kind identifies a reply's type by its wire prefix byte.
type Kind byte

// Reply kinds, named by their type-prefix byte.
const (
	// KindSimple is a "+..." simple string (e.g. +OK, +PONG).
	KindSimple Kind = '+'
	// KindError is a "-CODE message" error reply.
	KindError Kind = '-'
	// KindInt is a ":n" signed integer.
	KindInt Kind = ':'
	// KindBulk is a "$n" bulk string; length -1 is the null bulk.
	KindBulk Kind = '$'
	// KindArray is a "*n" array of replies.
	KindArray Kind = '*'
)

// Reply is one decoded server reply.
type Reply struct {
	// Kind selects which of the remaining fields is meaningful.
	Kind Kind
	// Str holds a simple string's text, or an error's full "CODE message"
	// text.
	Str string
	// Int holds an integer reply's value.
	Int int64
	// Bulk holds a bulk reply's bytes; nil when Null is set.
	Bulk []byte
	// Null reports the null bulk ($-1), the protocol's "no value".
	Null bool
	// Array holds an array reply's elements.
	Array []Reply
}

// IsError reports whether the reply is an error reply.
func (r Reply) IsError() bool { return r.Kind == KindError }

// ErrorCode returns an error reply's leading code token ("ERR", "TXN",
// "ABORTED", "PROTO"), or "" for non-error replies.
func (r Reply) ErrorCode() string {
	if r.Kind != KindError {
		return ""
	}
	for i := 0; i < len(r.Str); i++ {
		if r.Str[i] == ' ' {
			return r.Str[:i]
		}
	}
	return r.Str
}

// Err converts an error reply into a *ServerError, nil otherwise.
func (r Reply) Err() error {
	if r.Kind != KindError {
		return nil
	}
	return &ServerError{Text: r.Str}
}

// ServerError is an in-band error reply ("-CODE message") surfaced as a Go
// error by the client helpers.
type ServerError struct {
	// Text is the full error line as sent, code included.
	Text string
}

// Error returns the full error text.
func (e *ServerError) Error() string { return e.Text }

// Code returns the leading code token of the error text.
func (e *ServerError) Code() string { return Reply{Kind: KindError, Str: e.Text}.ErrorCode() }

// AppendCommand appends the frame for a command (an array of bulk strings)
// to dst and returns the extended buffer.
func AppendCommand(dst []byte, args ...[]byte) []byte {
	dst = append(dst, '*')
	dst = strconv.AppendInt(dst, int64(len(args)), 10)
	dst = append(dst, '\r', '\n')
	for _, a := range args {
		dst = appendBulkBody(dst, a)
	}
	return dst
}

// AppendSimple appends a "+s" simple-string reply.
func AppendSimple(dst []byte, s string) []byte {
	dst = append(dst, '+')
	dst = append(dst, s...)
	return append(dst, '\r', '\n')
}

// AppendError appends a "-CODE msg" error reply. The code is the
// machine-readable first token (PROTOCOL.md lists them); msg must not
// contain CR or LF (the encoder replaces them with spaces).
func AppendError(dst []byte, code, msg string) []byte {
	dst = append(dst, '-')
	dst = append(dst, code...)
	if msg != "" {
		dst = append(dst, ' ')
		for i := 0; i < len(msg); i++ {
			c := msg[i]
			if c == '\r' || c == '\n' {
				c = ' '
			}
			dst = append(dst, c)
		}
	}
	return append(dst, '\r', '\n')
}

// AppendInt appends a ":n" integer reply.
func AppendInt(dst []byte, n int64) []byte {
	dst = append(dst, ':')
	dst = strconv.AppendInt(dst, n, 10)
	return append(dst, '\r', '\n')
}

// AppendBulk appends a "$len" bulk-string reply.
func AppendBulk(dst []byte, b []byte) []byte { return appendBulkBody(dst, b) }

// AppendNull appends the "$-1" null bulk reply (key absent).
func AppendNull(dst []byte) []byte { return append(dst, '$', '-', '1', '\r', '\n') }

// AppendArrayHeader appends a "*n" array header; the caller appends the n
// element replies after it.
func AppendArrayHeader(dst []byte, n int) []byte {
	dst = append(dst, '*')
	dst = strconv.AppendInt(dst, int64(n), 10)
	return append(dst, '\r', '\n')
}

func appendBulkBody(dst, b []byte) []byte {
	dst = append(dst, '$')
	dst = strconv.AppendInt(dst, int64(len(b)), 10)
	dst = append(dst, '\r', '\n')
	dst = append(dst, b...)
	return append(dst, '\r', '\n')
}

// ReadCommand reads one command frame: an array of 1..MaxArgs bulk strings,
// each at most maxBulk bytes (0 means DefaultMaxBulk). A clean EOF at a
// frame boundary returns io.EOF; EOF inside a frame returns
// io.ErrUnexpectedEOF; any malformed byte returns an error wrapping
// ErrProto.
func ReadCommand(r *bufio.Reader, maxBulk int) ([][]byte, error) {
	if maxBulk <= 0 {
		maxBulk = DefaultMaxBulk
	}
	line, err := readLine(r, maxHeaderLine, true)
	if err != nil {
		return nil, err
	}
	if len(line) == 0 || line[0] != '*' {
		return nil, protoErrf("expected array header, got %q", clip(line))
	}
	n, err := parseLen(line[1:])
	if err != nil {
		return nil, err
	}
	if n < 1 || n > MaxArgs {
		return nil, protoErrf("command array length %d out of range [1,%d]", n, MaxArgs)
	}
	args := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		b, err := readBulk(r, maxBulk)
		if err != nil {
			return nil, err
		}
		if b == nil {
			return nil, protoErrf("null bulk string inside command")
		}
		args = append(args, b)
	}
	return args, nil
}

// ReadReply reads one reply frame. Bulk payloads are capped at maxBulk
// bytes (0 means DefaultMaxBulk).
func ReadReply(r *bufio.Reader, maxBulk int) (Reply, error) {
	if maxBulk <= 0 {
		maxBulk = DefaultMaxBulk
	}
	return readReply(r, maxBulk, 0)
}

func readReply(r *bufio.Reader, maxBulk, depth int) (Reply, error) {
	if depth > maxReplyDepth {
		return Reply{}, protoErrf("reply nesting exceeds %d", maxReplyDepth)
	}
	prefix, err := r.ReadByte()
	if err != nil {
		if err == io.EOF && depth > 0 {
			err = io.ErrUnexpectedEOF
		}
		return Reply{}, err
	}
	switch Kind(prefix) {
	case KindSimple, KindError:
		line, err := readLine(r, maxTextLine, false)
		if err != nil {
			return Reply{}, err
		}
		return Reply{Kind: Kind(prefix), Str: string(line)}, nil
	case KindInt:
		line, err := readLine(r, maxHeaderLine, false)
		if err != nil {
			return Reply{}, err
		}
		v, perr := strconv.ParseInt(string(line), 10, 64)
		if perr != nil {
			return Reply{}, protoErrf("bad integer reply %q", clip(line))
		}
		return Reply{Kind: KindInt, Int: v}, nil
	case KindBulk:
		if err := r.UnreadByte(); err != nil {
			return Reply{}, err
		}
		b, err := readBulk(r, maxBulk)
		if err != nil {
			return Reply{}, err
		}
		if b == nil {
			return Reply{Kind: KindBulk, Null: true}, nil
		}
		return Reply{Kind: KindBulk, Bulk: b}, nil
	case KindArray:
		line, err := readLine(r, maxHeaderLine, false)
		if err != nil {
			return Reply{}, err
		}
		n, err := parseLen(line)
		if err != nil {
			return Reply{}, err
		}
		if n < 0 || n > maxArrayElems {
			return Reply{}, protoErrf("array length %d out of range", n)
		}
		rep := Reply{Kind: KindArray, Array: make([]Reply, 0, min(n, 64))}
		for i := 0; i < n; i++ {
			el, err := readReply(r, maxBulk, depth+1)
			if err != nil {
				return Reply{}, err
			}
			rep.Array = append(rep.Array, el)
		}
		return rep, nil
	default:
		return Reply{}, protoErrf("unknown reply prefix %q", prefix)
	}
}

// readBulk reads a "$len\r\npayload\r\n" frame; a $-1 header returns
// (nil, nil) — the null bulk.
func readBulk(r *bufio.Reader, maxBulk int) ([]byte, error) {
	line, err := readLine(r, maxHeaderLine, false)
	if err != nil {
		return nil, err
	}
	if len(line) == 0 || line[0] != '$' {
		return nil, protoErrf("expected bulk header, got %q", clip(line))
	}
	if len(line) == 3 && line[1] == '-' && line[2] == '1' {
		return nil, nil
	}
	n, err := parseLen(line[1:])
	if err != nil {
		return nil, err
	}
	if n < 0 || n > maxBulk {
		return nil, protoErrf("bulk length %d out of range [0,%d]", n, maxBulk)
	}
	buf := make([]byte, n+2)
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	if buf[n] != '\r' || buf[n+1] != '\n' {
		return nil, protoErrf("bulk payload not terminated by CRLF")
	}
	return buf[:n:n], nil
}

// readLine reads up to CRLF, returning the line without the terminator.
// atBoundary marks a position where clean EOF is expected (between
// commands); elsewhere EOF becomes io.ErrUnexpectedEOF.
func readLine(r *bufio.Reader, limit int, atBoundary bool) ([]byte, error) {
	var line []byte
	for {
		b, err := r.ReadByte()
		if err != nil {
			if err == io.EOF && (!atBoundary || len(line) > 0) {
				err = io.ErrUnexpectedEOF
			}
			return nil, err
		}
		if b == '\n' {
			if len(line) == 0 || line[len(line)-1] != '\r' {
				return nil, protoErrf("line terminated by bare LF")
			}
			return line[:len(line)-1], nil
		}
		if len(line) >= limit {
			return nil, protoErrf("line exceeds %d bytes", limit)
		}
		line = append(line, b)
	}
}

// parseLen parses a strictly-decimal non-negative length field. Leading
// zeros, signs and empty fields are protocol errors so every valid frame
// has exactly one encoding (the fuzz round-trip relies on this).
func parseLen(b []byte) (int, error) {
	if len(b) == 0 || len(b) > 10 {
		return 0, protoErrf("bad length %q", clip(b))
	}
	if b[0] == '0' && len(b) > 1 {
		return 0, protoErrf("length has leading zero: %q", clip(b))
	}
	n := 0
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, protoErrf("bad length %q", clip(b))
		}
		n = n*10 + int(c-'0')
	}
	return n, nil
}

func clip(b []byte) []byte {
	if len(b) > 32 {
		return b[:32]
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
