// Package buildinfo is the single source of build metadata for the CLI
// tools' -version flags and the blinktree_build_info metric: a release
// version (ldflags-overridable), the Go toolchain version, and the build
// tags and VCS revision when the binary was built from a module.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
)

// version is the release version, "dev" unless overridden at link time:
//
//	go build -ldflags "-X blinktree/internal/buildinfo.version=v1.2.3"
var version = "dev"

// Version returns the release version ("dev" for untagged builds).
func Version() string { return version }

// GoVersion returns the Go toolchain version the binary was built with.
func GoVersion() string { return runtime.Version() }

// Tags returns the build tags the binary was compiled with (comma
// separated), or "" when none are known.
func Tags() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	for _, s := range bi.Settings {
		if s.Key == "-tags" {
			return s.Value
		}
	}
	return ""
}

// Revision returns the VCS revision the binary was built from (shortened),
// or "" when not stamped.
func Revision() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	var rev, dirty string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "-dirty"
			}
		}
	}
	if rev == "" {
		return ""
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	return rev + dirty
}

// String formats the one-line version banner printed by the tools'
// -version flags, e.g. "blinktree dev go1.24.1 (tags: obstrace)".
func String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "blinktree %s %s", Version(), GoVersion())
	var extra []string
	if t := Tags(); t != "" {
		extra = append(extra, "tags: "+t)
	}
	if r := Revision(); r != "" {
		extra = append(extra, "rev: "+r)
	}
	if len(extra) > 0 {
		fmt.Fprintf(&b, " (%s)", strings.Join(extra, ", "))
	}
	return b.String()
}
