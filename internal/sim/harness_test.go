package sim

import (
	"fmt"
	"os"
	"testing"

	"blinktree/internal/core"
	"blinktree/internal/storage"
)

// TestCrashPointsSmoke is the tier-1 bounded sweep: every crash point of a
// default-size workload, plain fault model (clean power cut, no tearing).
// The acceptance floor for the harness is >= 200 distinct crash points.
func TestCrashPointsSmoke(t *testing.T) {
	rep, err := Run(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("smoke: %s", rep)
	if rep.CrashPoints < 200 {
		t.Fatalf("workload too small: %d crash points, want >= 200", rep.CrashPoints)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
}

// TestCrashPointsTornSmoke enables both tearing modes on a strided sweep so
// the torn-page detection and full-redo fallback run under tier-1 too.
func TestCrashPointsTornSmoke(t *testing.T) {
	rep, err := Run(Config{Seed: 2, Stride: 3, TornPageWrites: true, TornWALTail: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("torn smoke: %s", rep)
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if rep.TornPages == 0 && rep.TornTails == 0 && rep.DroppedFrames == 0 {
		t.Errorf("torn sweep injected no faults; fault model not exercised")
	}
}

// TestCrashPointsCombining reruns the bounded sweep with the hot-leaf
// combining layer forced on (CombineAlways): every non-transactional put and
// delete goes publish -> self-drain -> batched WAL append, so crash points
// land inside the combining code path. Zero violations means combining
// preserves the recovery contract.
func TestCrashPointsCombining(t *testing.T) {
	rep, err := Run(Config{Seed: 1, Combining: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("combining: %s", rep)
	if rep.CrashPoints < 200 {
		t.Fatalf("workload too small: %d crash points, want >= 200", rep.CrashPoints)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
}

// TestCrashPointsBulkLoad seeds the workload through the chunked bulk
// loader (one leaf per chunk record) and enumerates every crash point,
// including all of those inside the load itself. Zero violations means the
// load is all-or-nothing at every boundary: uncommitted chunk records are
// skipped wholesale on recovery, and the committed load survives entire.
func TestCrashPointsBulkLoad(t *testing.T) {
	rep, err := Run(Config{Seed: 3, BulkLoad: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("bulkload: %s", rep)
	if rep.CrashPoints < 200 {
		t.Fatalf("workload too small: %d crash points, want >= 200", rep.CrashPoints)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
}

// TestCrashloopFull is the nightly-depth sweep: multiple seeds, exhaustive
// stride, all fault modes. Gated behind BLINKTREE_CRASHLOOP because it
// replays the workload a few thousand times.
func TestCrashloopFull(t *testing.T) {
	if os.Getenv("BLINKTREE_CRASHLOOP") == "" {
		t.Skip("set BLINKTREE_CRASHLOOP=1 to run the full crash-point sweep")
	}
	for seed := int64(1); seed <= 4; seed++ {
		for _, torn := range []bool{false, true} {
			// Alternate seeding mode so the full sweep also covers the
			// chunked bulk-load path under every fault model.
			bulk := seed%2 == 0
			name := fmt.Sprintf("seed=%d/torn=%v/bulk=%v", seed, torn, bulk)
			t.Run(name, func(t *testing.T) {
				rep, err := Run(Config{
					Seed:           seed,
					Steps:          220,
					TornPageWrites: torn,
					TornWALTail:    torn,
					BulkLoad:       bulk,
				})
				if err != nil {
					t.Fatal(err)
				}
				t.Logf("%s: %s", name, rep)
				for _, v := range rep.Violations {
					t.Errorf("violation: %s", v)
				}
			})
		}
	}
}

// consolidationFixture builds a worker-less tree on a sim disk, grows it to
// at least two leaves, then deletes the right leaf's keys so that a
// DrainTodo will run the paper's §4 node-consolidation SMO (left sibling
// absorbs the victim, parent's D_D increments, victim is deallocated).
// It returns the disk, the tree, and the surviving key set.
func consolidationFixture(t *testing.T, crashAt int64) (*storage.SimDisk, *core.Tree, map[string]string) {
	t.Helper()
	disk := storage.NewSimDisk(512, storage.SimConfig{Seed: 99, CrashAt: crashAt})
	tree, err := core.New(core.Options{
		PageSize:  512,
		CacheSize: 8,
		MinFill:   0.35,
		Workers:   core.WorkersNone,
		Store:     disk.Store(),
		LogDevice: disk.WAL(),
	})
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string]string)
	put := func(k, v string) {
		if err := tree.Put([]byte(k), []byte(v)); err != nil {
			t.Fatalf("put %s: %v", k, err)
		}
		want[k] = v
	}
	for i := 0; i < 24; i++ {
		put(fmt.Sprintf("key-%04d", i), fmt.Sprintf("val-%04d-%032d", i, i))
	}
	tree.DrainTodo() // complete the splits
	if tree.Height() == 0 {
		t.Fatalf("fixture never split: height 0")
	}
	// Empty out the upper half of the key space: the rightmost leaves fall
	// under MinFill and are enqueued for consolidation.
	for i := 12; i < 24; i++ {
		k := fmt.Sprintf("key-%04d", i)
		if err := tree.Delete([]byte(k)); err != nil {
			t.Fatalf("delete %s: %v", k, err)
		}
		delete(want, k)
	}
	if err := tree.FlushLog(); err != nil {
		t.Fatal(err)
	}
	return disk, tree, want
}

// TestCrashMidConsolidationDD enumerates every persistence operation of the
// consolidation drain itself and verifies, for each crash point, that
// recovery neither resurrects the deleted (absorbed) leaf nor drops the
// keys the left sibling absorbed — the D_D path of the paper's §4.
func TestCrashMidConsolidationDD(t *testing.T) {
	// Counting run: how many ops does the fixture + drain cost, and where
	// does the drain start?
	disk, tree, _ := consolidationFixture(t, 0)
	preDrain := disk.Ops()
	tree.DrainTodo()
	if err := tree.Close(); err != nil {
		t.Fatal(err)
	}
	total := disk.Ops()
	if total <= preDrain {
		t.Fatalf("drain performed no persistence operations (%d..%d); consolidation not exercised", preDrain, total)
	}
	stats := tree.Stats()
	if stats.LeafConsolidated == 0 {
		t.Fatalf("fixture performed no consolidations")
	}

	for k := preDrain + 1; k <= total; k++ {
		disk, tree, want := consolidationFixture(t, k)
		err := survivePowerCut(disk, func() error {
			tree.DrainTodo()
			return tree.Close()
		})
		if err != nil && !disk.Crashed() {
			t.Fatalf("crash point %d: close: %v", k, err)
		}
		if !disk.Crashed() {
			t.Fatalf("crash point %d never fired", k)
		}
		tree.Abandon()
		disk.Reboot()

		rec, err := core.New(core.Options{
			PageSize:  512,
			CacheSize: 8,
			MinFill:   0.35,
			Workers:   core.WorkersNone,
			Store:     disk.Store(),
			LogDevice: disk.WAL(),
		})
		if err != nil {
			t.Fatalf("crash point %d: recovery: %v", k, err)
		}
		rec.DrainTodo()
		if _, err := rec.VerifyDeep(); err != nil {
			t.Fatalf("crash point %d: verify-deep: %v", k, err)
		}
		got, err := rec.Records()
		if err != nil {
			t.Fatalf("crash point %d: records: %v", k, err)
		}
		// Everything up to the FlushLog is acknowledged: the drain only
		// moves structure, never logical content, so the recovered key set
		// must equal the fixture's exactly at every crash point.
		if len(got) != len(want) {
			t.Fatalf("crash point %d: recovered %d keys, want %d", k, len(got), len(want))
		}
		for key, val := range want {
			if string(got[key]) != val {
				t.Fatalf("crash point %d: key %s: got %q, want %q (absorbed key dropped or stale)", k, key, got[key], val)
			}
		}
		for key := range got {
			if _, ok := want[key]; !ok {
				t.Fatalf("crash point %d: resurrected key %s from the deleted leaf", k, key)
			}
		}
		rec.Abandon()
	}
}
