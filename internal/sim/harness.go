// Package sim is the crash-consistency harness: it drives a deterministic,
// seeded workload against a tree mounted on a simulated power-cut disk
// (storage.SimDisk), enumerates every persistence-operation boundary as a
// crash point, and for each one replays the workload, crashes, reboots,
// reopens the tree through recovery and verifies three properties:
//
//  1. structural integrity — Tree.Verify plus the VerifyDeep audits
//     (leaf-chain order, fences, D_D placement, page leaks, WAL tail);
//  2. no lost acknowledged writes — everything the workload was told is
//     durable (successful Commit, FlushLog, Checkpoint or Close) is present
//     after recovery;
//  3. prefix consistency — the recovered key set equals the shadow model's
//     state at SOME operation boundary between the last acknowledged point
//     and the crash (unsynced tail operations may each survive or vanish,
//     but never partially apply and never out of order).
//
// The harness is exercised by a bounded smoke test under `go test ./...`
// (tier-1) and by the full seed/fault-mode sweep behind the
// BLINKTREE_CRASHLOOP environment variable (the CI crashloop job).
package sim

import (
	"errors"
	"fmt"
	"math/rand"

	"blinktree/internal/core"
	"blinktree/internal/storage"
	"blinktree/internal/wal"
)

// Config parameterizes one crash-point enumeration sweep. The zero value is
// usable: every field defaults to the values in withDefaults.
type Config struct {
	// Seed drives both the workload generator and the disk's survival
	// lottery; a given (Config, code version) pair replays identically.
	Seed int64

	// PageSize and CacheSize shape the tree under test. The defaults (512,
	// 8) are deliberately tiny: small pages force splits and consolidations
	// within a short workload, and a small pool forces dirty-page
	// write-backs between checkpoints, exercising the WAL rule.
	PageSize  int
	CacheSize int

	// Steps is the workload length; Keys bounds the key domain (small
	// enough that deletes find their targets and leaves go under-utilized).
	Steps int
	Keys  int

	// MinFill is the consolidation threshold passed to the tree.
	MinFill float64

	// Stride enumerates every Stride-th crash point (1 = exhaustive).
	Stride int

	// TornPageWrites and TornWALTail enable the disk's sector-granular
	// page tearing and torn-final-frame modes.
	TornPageWrites bool
	TornWALTail    bool

	// Durability selects the commit acknowledgement mode under test; see
	// DurabilityContract for the per-mode loss contract the sweep
	// verifies. The tree always runs with autonomous forcing disabled
	// (core.Options.FlushInterval = -1) so the persistence-operation
	// stream stays deterministic across replays: under wal.DurPeriodic
	// and wal.DurAsync the only forces are the workload's explicit
	// FlushLog/Checkpoint/Close steps, which is exactly the worst-case
	// loss window those modes permit.
	Durability wal.DurabilityMode

	// MaxViolations caps how many failing crash points are described in
	// the report before the sweep stops early (0 = default 10).
	MaxViolations int

	// Combining routes the workload's non-transactional puts and deletes
	// through the hot-leaf combining layer unconditionally
	// (core.CombineAlways): the single-threaded driver publishes each
	// operation into the leaf's buffer and immediately self-drains it, so
	// every combining crash point (batched WAL appends included) lands at
	// a deterministic stream position.
	Combining bool

	// BulkLoad seeds the tree through the chunked bulk loader (half the key
	// domain, ascending) before the random workload starts, with
	// BulkChunkPages forced low so the load spans many SMOBulkChunk records.
	// The sweep then verifies the load's all-or-nothing contract at every
	// crash point inside it: either every loaded record survives recovery
	// (the commit record was durable) or none does — chunk records without
	// a commit are skipped wholesale. The load runs serially (parallel=1):
	// worker goroutines would make the persistence-operation stream
	// nondeterministic across replays, and the chunked logging under test
	// is identical either way.
	BulkLoad bool
}

func (c Config) withDefaults() Config {
	if c.PageSize == 0 {
		c.PageSize = 512
	}
	if c.CacheSize == 0 {
		c.CacheSize = 8
	}
	if c.Steps == 0 {
		c.Steps = 150
	}
	if c.Keys == 0 {
		c.Keys = 64
	}
	if c.MinFill == 0 {
		c.MinFill = 0.35
	}
	if c.Stride == 0 {
		c.Stride = 1
	}
	if c.MaxViolations == 0 {
		c.MaxViolations = 10
	}
	return c
}

// Report aggregates one sweep: how many crash points were enumerated, what
// fault modes actually fired, what recovery had to do, and every invariant
// violation found (an empty Violations is the pass condition).
type Report struct {
	// Contract restates the durability contract this sweep verified (see
	// DurabilityContract), so matrix logs are self-describing.
	Contract string

	// Ops is the persistence-operation count of the crash-free run; crash
	// points are enumerated over [1, Ops].
	Ops int64

	// CrashPoints is the number of crash points actually exercised.
	CrashPoints int

	// Violations describes each failing crash point, capped at
	// Config.MaxViolations.
	Violations []string

	// TornPages / DroppedFrames / TornTails total the fault modes the disk
	// injected across all crash points; a sweep that never tears a page
	// or drops a frame is not testing much.
	TornPages     int
	DroppedFrames int
	TornTails     int

	// Recovery totals across all reopens.
	FullRedoRetries int
	CorruptPages    int
	LosersUndone    int
	SMOsRedone      int
	RecOpsRedone    int
}

// Passed reports whether the sweep found no violations.
func (r *Report) Passed() bool { return len(r.Violations) == 0 }

// DurabilityContract states the loss contract the sweep verifies for mode:
// what a successful Txn.Commit acknowledgement is allowed to mean at a
// crash. Every mode additionally guarantees structural integrity and
// shadow-prefix consistency after recovery.
func DurabilityContract(m wal.DurabilityMode) string {
	if m.AckAfterForce() {
		return m.String() + ": no acknowledged commit is ever lost (ack follows the log force covering its LSN)"
	}
	return m.String() + ": a crash loses at most the commits appended since the last explicit force (FlushLog/Checkpoint/Close); acknowledged-but-unforced commits may vanish, but only as a suffix"
}

// String renders a one-paragraph summary (used by the E13 experiment table
// notes and test logs).
func (r *Report) String() string {
	return fmt.Sprintf(
		"crash points %d over %d ops: %d violations; torn pages %d, dropped frames %d, torn tails %d; recovery: %d SMOs, %d recops, %d losers undone, %d corrupt pages, %d full-redo retries",
		r.CrashPoints, r.Ops, len(r.Violations), r.TornPages, r.DroppedFrames,
		r.TornTails, r.SMOsRedone, r.RecOpsRedone, r.LosersUndone,
		r.CorruptPages, r.FullRedoRetries)
}

// simOp is one shadow-model mutation. A delete of an absent key is a no-op
// in both the tree and the shadow, so ops can be recorded unconditionally.
type simOp struct {
	del      bool
	key, val string
}

// group is the shadow model's atom of visibility: either a single
// autocommit operation or a whole transaction. A group's effects appear in
// the recovered tree all-or-nothing — autocommit ops are individually
// logged, transactions become visible only if their commit record survived.
// aborted groups (cleanly aborted or crashed mid-transaction before commit)
// are never visible: recovery undoes them as losers.
type group struct {
	ops     []simOp
	aborted bool
}

// shadow is the flat committed-effect model built while driving the
// workload. groups[:acked] are guaranteed durable (the workload received a
// successful Commit/FlushLog/Checkpoint/Close acknowledgement covering
// them); groups[acked:] are the unsynced tail, each of which may or may not
// have survived — but only as a prefix.
type shadow struct {
	groups []group
	acked  int
}

// driver replays the seeded workload against one tree/disk pair, recording
// the shadow model as it goes. Runs with the same Config draw the same
// random sequence, so every crash run executes a prefix of the counting
// run's operation stream.
type driver struct {
	cfg  Config
	disk *storage.SimDisk
	tree *core.Tree
	rng  *rand.Rand
	sh   shadow
}

func (d *driver) key() string {
	return fmt.Sprintf("key-%04d", d.rng.Intn(d.cfg.Keys))
}

func (d *driver) val(step int) string {
	return fmt.Sprintf("val-%04d-%08d-%024d", step, d.rng.Intn(1<<30), 0)
}

// crashed reports whether err (or the disk state) indicates the simulated
// power cut, which ends the drive without being a violation.
func (d *driver) crashed(err error) bool {
	return d.disk.Crashed() || errors.Is(err, storage.ErrPowerCut)
}

// survivePowerCut converts a panic raised while the disk is crashed into a
// normal return. The SMO machinery treats a log-append failure as fatal and
// panics — which is faithful: a real power cut kills the process mid-SMO.
// The harness models that death and proceeds to reboot and recovery. Panics
// on a healthy disk are real bugs and propagate.
func survivePowerCut(disk *storage.SimDisk, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if disk.Crashed() {
				err = nil
				return
			}
			panic(r)
		}
	}()
	return fn()
}

// run drives the workload to completion or power cut. A non-nil return is
// a real violation (an operation failed for a reason other than the cut).
func (d *driver) run() error {
	return survivePowerCut(d.disk, d.runSteps)
}

func (d *driver) runSteps() error {
	if d.cfg.BulkLoad {
		if err := d.seedBulkLoad(); err != nil || d.disk.Crashed() {
			return err
		}
	}
	for i := 0; i < d.cfg.Steps; i++ {
		if d.disk.Crashed() {
			return nil
		}
		if err := d.step(i); err != nil {
			return err
		}
	}
	if d.disk.Crashed() {
		return nil
	}
	// Clean shutdown flushes everything: full acknowledgement.
	if err := d.tree.Close(); err != nil {
		if d.crashed(err) {
			return nil
		}
		return fmt.Errorf("close: %w", err)
	}
	d.sh.acked = len(d.sh.groups)
	return nil
}

// step executes one workload step. The mix is weighted toward mutations,
// with enough maintenance drains to complete splits and consolidations and
// enough durability points to move the acknowledged horizon.
func (d *driver) step(i int) error {
	r := d.rng.Intn(100)
	switch {
	case r < 42: // autocommit put
		op := simOp{key: d.key(), val: d.val(i)}
		return d.autocommit(op, d.tree.Put([]byte(op.key), []byte(op.val)))
	case r < 64: // autocommit delete
		op := simOp{del: true, key: d.key()}
		err := d.tree.Delete([]byte(op.key))
		if errors.Is(err, core.ErrKeyNotFound) {
			err = nil // no-op in tree and shadow alike
		}
		return d.autocommit(op, err)
	case r < 74: // transaction, committed
		return d.txn(false)
	case r < 78: // transaction, deliberately aborted
		return d.txn(true)
	case r < 84: // force the log: acknowledges every group so far
		if err := d.tree.FlushLog(); err != nil {
			if d.crashed(err) {
				return nil
			}
			return fmt.Errorf("flushlog: %w", err)
		}
		d.sh.acked = len(d.sh.groups)
		return nil
	case r < 94: // maintenance: complete pending splits/consolidations
		d.tree.DrainTodo()
		return nil // a power cut inside the drain surfaces via disk.Crashed
	default: // checkpoint: flush pages, sync store, log checkpoint record
		if err := d.tree.Checkpoint(); err != nil {
			if d.crashed(err) {
				return nil
			}
			return fmt.Errorf("checkpoint: %w", err)
		}
		d.sh.acked = len(d.sh.groups)
		return nil
	}
}

// seedBulkLoad runs the chunked bulk loader over the even half of the key
// domain and records it as ONE shadow group: the load is atomic, so its
// records appear after recovery all together or not at all. On success the
// loader's completion checkpoint makes the group acknowledged-durable; on a
// power cut mid-load the group sits in the maybe-visible tail (the commit
// record may or may not have been appended before the cut), which the
// prefix check accommodates — but only as a unit, never partially.
func (d *driver) seedBulkLoad() error {
	g := group{}
	for i := 0; i < d.cfg.Keys; i += 2 {
		g.ops = append(g.ops, simOp{
			key: fmt.Sprintf("key-%04d", i),
			val: fmt.Sprintf("load-%04d-%024d", i, 0),
		})
	}
	i := 0
	next := func() ([]byte, []byte, bool) {
		if i >= len(g.ops) {
			return nil, nil, false
		}
		op := g.ops[i]
		i++
		return []byte(op.key), []byte(op.val), true
	}
	err := d.tree.BulkLoadParallel(next, 0.85, 1)
	d.sh.groups = append(d.sh.groups, g)
	switch {
	case err == nil:
		d.sh.acked = len(d.sh.groups)
		return nil
	case d.crashed(err):
		return nil
	default:
		return fmt.Errorf("bulk load: %w", err)
	}
}

// autocommit records a single-op group. On success the group is in the
// unsynced tail (logged, visibility decided by the survival lottery at the
// crash); on a power cut the op is the final "attempted" group — its log
// record may or may not have been appended before the cut, so it may or may
// not be visible, which the prefix check accommodates.
func (d *driver) autocommit(op simOp, err error) error {
	if err != nil && !d.crashed(err) {
		return fmt.Errorf("autocommit %q: %w", op.key, err)
	}
	d.sh.groups = append(d.sh.groups, group{ops: []simOp{op}})
	return nil
}

// txn runs one contained transaction (no other operations interleave with
// it, so its log records are contiguous and the group model is exact).
func (d *driver) txn(abort bool) error {
	x, err := d.tree.Begin()
	if err != nil {
		if d.crashed(err) {
			return nil
		}
		return fmt.Errorf("begin: %w", err)
	}
	g := group{}
	n := 2 + d.rng.Intn(3)
	for j := 0; j < n; j++ {
		op := simOp{key: d.key()}
		if d.rng.Intn(100) < 25 {
			op.del = true
			err = x.Delete([]byte(op.key))
			if errors.Is(err, core.ErrKeyNotFound) {
				err = nil
			}
		} else {
			op.val = d.val(j)
			err = x.Put([]byte(op.key), []byte(op.val))
		}
		if err != nil {
			// A power cut mid-transaction means no commit record can ever
			// become durable: the transaction is a loser, never visible.
			// A clean in-run abort (lock or delete-state conflict) likewise.
			if !d.crashed(err) {
				_ = x.Abort()
			}
			g.aborted = true
			d.sh.groups = append(d.sh.groups, g)
			if d.crashed(err) {
				return nil
			}
			return nil
		}
		g.ops = append(g.ops, op)
	}
	if abort {
		g.aborted = true
		d.sh.groups = append(d.sh.groups, g)
		if err := x.Abort(); err != nil && !d.crashed(err) {
			return fmt.Errorf("abort: %w", err)
		}
		return nil
	}
	err = x.Commit()
	d.sh.groups = append(d.sh.groups, g)
	switch {
	case err == nil:
		// The acknowledged-durable horizon only advances when the mode's
		// contract says a successful Commit implies a covering log force
		// (sync, group). Under periodic/async the commit is acknowledged
		// but unforced: it stays in the maybe-visible tail until the next
		// explicit FlushLog/Checkpoint/Close.
		if d.cfg.Durability.AckAfterForce() {
			d.sh.acked = len(d.sh.groups)
		}
		return nil
	case d.crashed(err):
		// The commit record may have been appended before the cut; the
		// group stays in the maybe-visible tail.
		return nil
	default:
		return fmt.Errorf("commit: %w", err)
	}
}

// newTree mounts a worker-less tree on the sim disk. WorkersNone keeps the
// run single-threaded and deterministic: maintenance happens only inside
// DrainTodo steps, so the persistence-operation stream is identical across
// replays. FlushInterval -1 disables the commit pipeline's autonomous
// forcing for the same reason — a timer-driven background Sync would land
// at a nondeterministic position in the disk's op count. Group mode keeps
// its log-writer (commit parking needs it), but the single-threaded driver
// blocks in Commit until the coalesced force completes, so the writer's
// Syncs interleave at fixed stream positions.
func newTree(cfg Config, disk *storage.SimDisk) (*core.Tree, error) {
	opts := core.Options{
		PageSize:      cfg.PageSize,
		CacheSize:     cfg.CacheSize,
		MinFill:       cfg.MinFill,
		Workers:       core.WorkersNone,
		Store:         disk.Store(),
		LogDevice:     disk.WAL(),
		Durability:    cfg.Durability,
		FlushInterval: -1,
	}
	if cfg.BulkLoad {
		// One leaf per chunk record: maximizes distinct crash points inside
		// the chunked-logging path.
		opts.BulkChunkPages = 1
	}
	if cfg.Combining {
		// CombineAlways publishes every eligible operation without trying
		// the latch first, so the single-threaded driver exercises the
		// publish -> self-drain -> batched-WAL-append path deterministically.
		opts.Combining = core.FeatureOn
		opts.CombineThreshold = core.CombineAlways
	} else {
		opts.Combining = core.FeatureOff
		opts.AppendFastPath = core.FeatureOff
	}
	return core.New(opts)
}

// checkRecovered verifies the recovered tree against the shadow model:
// structural invariants first, then the acknowledged-prefix equivalence.
func checkRecovered(t *core.Tree, sh *shadow) error {
	t.DrainTodo()
	if _, err := t.VerifyDeep(); err != nil {
		return fmt.Errorf("verify-deep: %w", err)
	}
	rec, err := t.Records()
	if err != nil {
		return fmt.Errorf("records: %w", err)
	}
	return matchPrefix(sh, rec)
}

// matchPrefix checks that rec equals the shadow fold of groups[:g] for some
// g in [acked, len(groups)]. It folds the acknowledged prefix, counts the
// keys on which candidate and recovered disagree, then applies tail groups
// one at a time, updating the disagreement count incrementally — one pass
// over the workload regardless of where the match lands.
func matchPrefix(sh *shadow, rec map[string][]byte) error {
	cand := make(map[string]string)
	apply := func(g group) {
		if g.aborted {
			return
		}
		for _, op := range g.ops {
			if op.del {
				delete(cand, op.key)
			} else {
				cand[op.key] = op.val
			}
		}
	}
	for _, g := range sh.groups[:sh.acked] {
		apply(g)
	}

	matches := func(k string) bool {
		cv, cok := cand[k]
		rv, rok := rec[k]
		return cok == rok && (!cok || cv == string(rv))
	}
	diff := 0
	seen := make(map[string]struct{}, len(cand)+len(rec))
	for k := range cand {
		seen[k] = struct{}{}
	}
	for k := range rec {
		seen[k] = struct{}{}
	}
	for k := range seen {
		if !matches(k) {
			diff++
		}
	}

	applyTracked := func(g group) {
		if g.aborted {
			return
		}
		for _, op := range g.ops {
			before := matches(op.key)
			if op.del {
				delete(cand, op.key)
			} else {
				cand[op.key] = op.val
			}
			if after := matches(op.key); after != before {
				if after {
					diff--
				} else {
					diff++
				}
			}
		}
	}
	for g := sh.acked; ; g++ {
		if diff == 0 {
			return nil
		}
		if g >= len(sh.groups) {
			break
		}
		applyTracked(sh.groups[g])
	}
	// No prefix matched. Distinguish the two failure classes for triage:
	// a key wrong at the acknowledged prefix is a lost acknowledged write;
	// otherwise the tail applied inconsistently (out of order or torn).
	return fmt.Errorf("recovered state (%d keys) matches no shadow prefix in [acked=%d, %d]; %d keys disagree at the longest prefix",
		len(rec), sh.acked, len(sh.groups), diff)
}

// Run executes one sweep: a crash-free counting run to learn the operation
// total, then one crash-reboot-recover-verify cycle per enumerated crash
// point. The returned error reports harness-level failures only (the
// counting run itself failing); per-crash-point failures are collected in
// Report.Violations.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := &Report{Contract: DurabilityContract(cfg.Durability)}

	// Counting run: never crashes (CrashAt 0 disarms the trigger).
	disk := storage.NewSimDisk(cfg.PageSize, storage.SimConfig{
		Seed:           cfg.Seed,
		SectorSize:     cfg.PageSize / 4,
		TornPageWrites: cfg.TornPageWrites,
		TornWALTail:    cfg.TornWALTail,
	})
	tree, err := newTree(cfg, disk)
	if err != nil {
		return rep, fmt.Errorf("sim: counting run open: %w", err)
	}
	d := &driver{cfg: cfg, disk: disk, tree: tree, rng: rand.New(rand.NewSource(cfg.Seed))}
	if err := d.run(); err != nil {
		return rep, fmt.Errorf("sim: counting run: %w", err)
	}
	if disk.Crashed() {
		return rep, fmt.Errorf("sim: counting run crashed without a crash point armed")
	}
	rep.Ops = disk.Ops()
	// The crash-free run must also recover to exactly its own final state.
	disk.Reboot()
	if err := reopenAndCheck(cfg, disk, &d.sh, rep); err != nil {
		rep.Violations = append(rep.Violations, fmt.Sprintf("crash-free run: %v", err))
	}

	for k := int64(1); k <= rep.Ops; k += int64(cfg.Stride) {
		if len(rep.Violations) >= cfg.MaxViolations {
			break
		}
		rep.CrashPoints++
		if err := runCrashPoint(cfg, k, rep); err != nil {
			rep.Violations = append(rep.Violations, fmt.Sprintf("crash point %d: %v", k, err))
		}
	}
	return rep, nil
}

// runCrashPoint replays the workload with the power cut armed at op k,
// reboots and verifies. Fault-mode and recovery counters accumulate into
// rep regardless of outcome.
func runCrashPoint(cfg Config, k int64, rep *Report) error {
	disk := storage.NewSimDisk(cfg.PageSize, storage.SimConfig{
		Seed:           cfg.Seed,
		CrashAt:        k,
		SectorSize:     cfg.PageSize / 4,
		TornPageWrites: cfg.TornPageWrites,
		TornWALTail:    cfg.TornWALTail,
	})
	sh := &shadow{}
	tree, err := newTree(cfg, disk)
	switch {
	case err != nil && disk.Crashed():
		// The cut fired while the initial open was formatting the tree:
		// nothing was ever acknowledged, so recovery to any state up to
		// and including the empty tree is correct.
	case err != nil:
		return fmt.Errorf("open: %w", err)
	default:
		d := &driver{cfg: cfg, disk: disk, tree: tree, rng: rand.New(rand.NewSource(cfg.Seed))}
		if err := d.run(); err != nil {
			tree.Abandon()
			return err
		}
		if !disk.Crashed() {
			// The workload is deterministic, so op k must be reached — the
			// counting run performed rep.Ops >= k operations.
			tree.Abandon()
			return fmt.Errorf("crash point never fired (nondeterministic op stream?)")
		}
		tree.Abandon()
		sh = &d.sh
	}

	disk.Reboot()
	rep.TornPages += disk.TornPages()
	rep.DroppedFrames += disk.DroppedFrames()
	if torn, _ := disk.WAL().TailTorn(); torn {
		rep.TornTails++
	}
	return reopenAndCheck(cfg, disk, sh, rep)
}

// reopenAndCheck runs recovery over the rebooted disk and verifies the
// recovered tree against the shadow, folding recovery counters into rep.
func reopenAndCheck(cfg Config, disk *storage.SimDisk, sh *shadow, rep *Report) error {
	t, err := newTree(cfg, disk)
	if err != nil {
		return fmt.Errorf("recovery: %w", err)
	}
	defer t.Abandon()
	rs := t.RecoveryStats()
	rep.FullRedoRetries += rs.FullRedoRetries
	rep.CorruptPages += rs.CorruptPages
	rep.LosersUndone += rs.LosersUndone
	rep.SMOsRedone += rs.SMOsRedone
	rep.RecOpsRedone += rs.RecOpsRedone
	return checkRecovered(t, sh)
}
