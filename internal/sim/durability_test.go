package sim

import (
	"fmt"
	"os"
	"testing"

	"blinktree/internal/wal"
)

// allModes is every durability mode the commit pipeline supports, in
// strictness order.
var allModes = []wal.DurabilityMode{wal.DurSync, wal.DurGroup, wal.DurPeriodic, wal.DurAsync}

// TestDurabilityModesSmoke is the tier-1 bounded check that the crash-point
// enumerator verifies each mode's stated contract: sync and group lose
// nothing acknowledged; periodic and async lose at most the commits
// appended since the last explicit force, and only as a suffix. A strided
// sweep keeps the four modes inside the tier-1 time budget.
func TestDurabilityModesSmoke(t *testing.T) {
	for _, mode := range allModes {
		t.Run(mode.String(), func(t *testing.T) {
			rep, err := Run(Config{Seed: 7, Stride: 4, Durability: mode})
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("contract: %s", rep.Contract)
			t.Logf("%s: %s", mode, rep)
			if rep.CrashPoints < 40 {
				t.Fatalf("sweep too small: %d crash points", rep.CrashPoints)
			}
			for _, v := range rep.Violations {
				t.Errorf("violation: %s", v)
			}
		})
	}
}

// TestDurabilityAckHorizon pins the mode-awareness of the shadow model
// itself: under an ack-after-force mode a successful transaction commit
// advances the acknowledged horizon, under the deferred modes it must not —
// otherwise the matrix would demand durability the mode never promised (or
// silently verify a weaker contract than sync/group claim).
func TestDurabilityAckHorizon(t *testing.T) {
	for _, mode := range allModes {
		want := mode == wal.DurSync || mode == wal.DurGroup
		if got := mode.AckAfterForce(); got != want {
			t.Errorf("%s: AckAfterForce = %v, want %v", mode, got, want)
		}
	}
}

// TestDurabilityContractMatrix is the CI durability-matrix job: every mode
// crossed with the clean and torn fault models, exhaustive crash-point
// stride. Gated behind BLINKTREE_DURABILITY_MATRIX because it replays the
// workload a few thousand times.
func TestDurabilityContractMatrix(t *testing.T) {
	if os.Getenv("BLINKTREE_DURABILITY_MATRIX") == "" {
		t.Skip("set BLINKTREE_DURABILITY_MATRIX=1 to run the full durability-contract matrix")
	}
	for _, mode := range allModes {
		for _, torn := range []bool{false, true} {
			name := fmt.Sprintf("mode=%s/torn=%v", mode, torn)
			t.Run(name, func(t *testing.T) {
				rep, err := Run(Config{
					Seed:           11,
					Steps:          200,
					Durability:     mode,
					TornPageWrites: torn,
					TornWALTail:    torn,
				})
				if err != nil {
					t.Fatal(err)
				}
				t.Logf("contract: %s", rep.Contract)
				t.Logf("%s: %s", name, rep)
				for _, v := range rep.Violations {
					t.Errorf("violation: %s", v)
				}
			})
		}
	}
}
