// Package blinktree is a concurrent B-link tree with simple, robust node
// deletion, reproducing David Lomet's "Simple, Robust and Highly Concurrent
// B-trees with Node Deletion" (ICDE 2004).
//
// The tree supports fully concurrent reads, writes, range scans and
// transactions. Structure modifications beyond the mandatory first half
// split — index-term postings, node consolidations, root changes — are lazy
// background actions that are simply abandoned when the paper's delete
// state (a global index-delete counter D_X and per-parent data-delete
// counters D_D) shows they might touch a deleted node; the B-link-tree
// property keeps searches correct regardless. Node deletion consolidates
// any under-utilized node into its left sibling, without waiting for it to
// empty.
//
// Quick start:
//
//	t, err := blinktree.Open(blinktree.Options{})
//	if err != nil { ... }
//	defer t.Close()
//	t.Put([]byte("k"), []byte("v"))
//	v, err := t.Get([]byte("k"))
//
// Open with a Path for a durable, write-ahead-logged tree that recovers
// from crashes; leave Path empty for a volatile in-memory tree.
package blinktree

import (
	"errors"
	"path/filepath"
	"time"

	"blinktree/internal/core"
	"blinktree/internal/latch"
	"blinktree/internal/obs"
	"blinktree/internal/storage"
	"blinktree/internal/wal"
)

// Errors returned by tree operations.
var (
	// ErrKeyNotFound is returned by Get and Delete of an absent key.
	ErrKeyNotFound = core.ErrKeyNotFound
	// ErrEmptyKey is returned for zero-length keys.
	ErrEmptyKey = core.ErrEmptyKey
	// ErrEntryTooLarge is returned when a record cannot fit in a node.
	ErrEntryTooLarge = core.ErrEntryTooLarge
	// ErrClosed is returned by operations on a closed tree.
	ErrClosed = core.ErrClosed
	// ErrTxnDone is returned by operations on a finished transaction.
	ErrTxnDone = core.ErrTxnDone
	// ErrTxnAborted is returned when a transaction was rolled back (as a
	// deadlock victim, or because delete state invalidated a re-latch);
	// retry the transaction.
	ErrTxnAborted = core.ErrTxnAborted
)

// Baseline selects one of the paper's comparator algorithms instead of the
// paper's method. The default (BaselinePaper) is the contribution itself.
type Baseline int

const (
	// BaselinePaper is the paper's delete-state method (the default).
	BaselinePaper Baseline = iota
	// BaselineDrain deletes nodes with the drain approach: only empty
	// nodes, an extra logged mark, and a reference-drain grace period.
	BaselineDrain
	// BaselineSerialSMO serializes all structure modifications under one
	// global tree latch with eager index-term posting (ARIES/IM-style).
	BaselineSerialSMO
	// BaselineNoDelete disables node deletion entirely (and with it latch
	// coupling and delete-state bookkeeping).
	BaselineNoDelete
)

// DurabilityMode selects when Txn.Commit acknowledges relative to the log
// force that makes the commit durable; see Options.Durability.
type DurabilityMode = wal.DurabilityMode

const (
	// DurabilitySync (the default) forces the log on the committing
	// goroutine before Commit returns: nothing acknowledged is ever lost.
	DurabilitySync = wal.DurSync
	// DurabilityGroup parks committers on a dedicated log-writer goroutine
	// that coalesces concurrent commits into one device force and
	// acknowledges each committer only after its LSN is durable. Same
	// loss guarantee as DurabilitySync, fewer forces under concurrency.
	DurabilityGroup = wal.DurGroup
	// DurabilityPeriodic acknowledges Commit immediately; a background
	// log-writer forces every FlushInterval or after FlushBytes of
	// unforced log. A crash loses at most the unforced window.
	DurabilityPeriodic = wal.DurPeriodic
	// DurabilityAsync acknowledges Commit immediately and nudges the
	// log-writer to force opportunistically. A crash loses at most the
	// commits not yet forced; FlushLog is the explicit durability barrier.
	DurabilityAsync = wal.DurAsync
)

// ParseDurabilityMode parses a durability mode's flag name: "sync",
// "group", "periodic" or "async" (the empty string means sync). Command
// binaries use it for their -durability flags.
func ParseDurabilityMode(s string) (DurabilityMode, error) { return wal.ParseDurabilityMode(s) }

// ReadPath selects how point reads and cursor positioning descend the
// tree; see Options.OptimisticReads.
type ReadPath = core.ReadPath

const (
	// ReadPathDefault lets the tree choose (currently optimistic).
	ReadPathDefault = core.ReadPathDefault
	// ReadPathOptimistic descends root-to-leaf without latching index
	// nodes, validating a per-node version word instead, and takes a
	// single shared latch at the target leaf. Falls back to the latched
	// traversal after repeated validation failures.
	ReadPathOptimistic = core.ReadPathOptimistic
	// ReadPathPessimistic always uses the latch-coupled traversal.
	ReadPathPessimistic = core.ReadPathPessimistic
)

// FeatureMode is a tri-state switch for optional engine features; see
// Options.Combining and Options.AppendFastPath.
type FeatureMode = core.FeatureMode

const (
	// FeatureDefault lets the tree choose (currently on for both features).
	FeatureDefault = core.FeatureDefault
	// FeatureOn enables the feature explicitly.
	FeatureOn = core.FeatureOn
	// FeatureOff disables the feature explicitly.
	FeatureOff = core.FeatureOff
)

// Options configures a Tree. The zero value is a sensible volatile tree:
// 4 KiB pages, 4096-node cache, background maintenance workers.
type Options struct {
	// Path, when non-empty, is a directory for the durable files
	// (pages.db, wal.log). The tree is write-ahead logged and recovers
	// committed state after a crash. Empty means volatile and in-memory.
	Path string

	// PageSize is the node size in bytes (default 4096).
	PageSize int
	// Comparator orders keys; nil means bytewise. A custom comparator must
	// order the empty key below every non-empty key, and keys comparing
	// equal are the same record. ScanPrefix and separator truncation are
	// bytewise-only (truncation is disabled automatically).
	Comparator func(a, b []byte) int
	// CacheSize is the buffer pool capacity in nodes (default 4096).
	CacheSize int
	// MinFill is the consolidation threshold as a fraction of PageSize
	// (default 0.30): nodes below it are merged into their left sibling.
	MinFill float64
	// Workers is the number of background maintenance goroutines
	// processing lazy structure modifications (default 2). Use -1 for
	// none; call Maintain to run maintenance manually.
	Workers int
	// MaintenanceShards is the number of maintenance-scheduler shards;
	// enqueues and worker pops contend only within one shard. 0 derives
	// the count from GOMAXPROCS.
	MaintenanceShards int
	// MaintenanceSoftCap is the backpressure threshold: above this many
	// queued maintenance actions, a completing operation processes one
	// action inline. 0 means the default (64 per shard); -1 disables
	// backpressure. Only active when Workers > 0.
	MaintenanceSoftCap int
	// Baseline optionally selects a comparator algorithm.
	Baseline Baseline

	// BulkChunkPages is the number of pages grouped into one bulk-load
	// chunk — the unit of WAL logging and of hand-off to BulkLoadParallel's
	// builder goroutines (default 64, clamped to fit the cache). Most
	// callers leave it zero.
	BulkChunkPages int

	// Durability selects when Txn.Commit acknowledges relative to the log
	// force that makes the commit durable (default DurabilitySync). Only
	// meaningful with a Path: volatile trees ignore it. See the
	// DurabilityMode constants for each mode's contract.
	Durability DurabilityMode
	// FlushInterval is DurabilityPeriodic's background force period
	// (0 means the default, 2ms). Negative disables autonomous forcing in
	// the periodic and async modes; commits are then durable only at
	// explicit FlushLog/Checkpoint/Close points.
	FlushInterval time.Duration
	// FlushBytes is DurabilityPeriodic's unforced-byte threshold (0 means
	// the default, 256 KiB): once more than this many appended log bytes
	// await a force, the log-writer forces early.
	FlushBytes int64

	// Combining selects hot-leaf operation combining (default on). When a
	// non-transactional write finds its target leaf contended, it publishes
	// the operation into a per-leaf buffer instead of queueing on the latch;
	// whichever writer holds the leaf exclusively drains the buffer, applying
	// the whole batch under one latch acquisition and one write-ahead-log
	// mutex hold, then wakes each publisher with its individual result.
	Combining FeatureMode
	// CombineBuffer is the per-leaf combining buffer capacity in operations
	// (default 16). A full buffer makes the publisher fall back to the
	// normal latched path.
	CombineBuffer int
	// CombineThreshold is the number of consecutive failed latch
	// try-acquires on one leaf before writers start publishing into its
	// combining buffer (default 4). Negative publishes unconditionally
	// without trying the latch first — a deterministic mode used by the
	// simulation harness, not a tuning choice.
	CombineThreshold int
	// AppendFastPath selects the right-edge append fast path (default on):
	// the tree caches the rightmost leaf, and inserts of keys at or past its
	// low fence try it directly — validated under the latch — instead of
	// descending from the root. Monotonic (append-shaped) loads skip almost
	// every traversal; other workloads walk away after one comparison.
	AppendFastPath FeatureMode

	// OptimisticReads selects the read-path traversal. The default is
	// optimistic: Get, transactional reads and cursor positioning descend
	// without latching index nodes, validating each node's version word
	// after reading its routing information, and latch only the target
	// leaf in share mode. Validation failures restart the descent; after
	// a few restarts the read falls back to the pessimistic latch-coupled
	// traversal. Set ReadPathPessimistic to always latch-couple.
	OptimisticReads ReadPath

	// Observability enables per-operation latency histograms
	// (Observability.Metrics), the SMO lifecycle trace ring
	// (Observability.Trace), and/or sampled per-operation span tracing
	// (Observability.Spans). Nil disables all of them; the hot paths then
	// pay only a nil-pointer check (see the overhead benchmark in
	// internal/bench). Snapshot, TraceEvents, Spans/SlowSpans and the
	// blinkmetrics HTTP handler read what this collects.
	Observability *Observability
}

// Observability configures metrics and tracing; see obs.Config.
type Observability = obs.Config

// Metrics is a tree's full observability snapshot: operation counters,
// scheduler, latch, buffer pool, store, lock and log statistics, plus (when
// enabled) latency histograms.
type Metrics = core.TreeMetrics

// TraceEvent is one structured trace event: an SMO lifecycle transition, a
// long latch wait, a no-wait lock failure, a deadlock victim.
type TraceEvent = obs.Event

// OpTrace is one finished operation span: a sampled operation's total
// latency broken into exclusive per-stage times (descent, latch waits,
// buffer fetches, lock waits, WAL append, group-commit park/force), with a
// bounded interval timeline. Spans and SlowSpans return them; see
// Observability.Spans.
type OpTrace = obs.OpTrace

// Tree is a concurrent ordered key/value map backed by the B-link tree.
// All methods are safe for concurrent use.
type Tree struct {
	inner *core.Tree
	// devClose closes the log device on Close (file-backed trees).
	devClose func() error
}

// Open creates or recovers a tree.
func Open(opts Options) (*Tree, error) {
	cOpts := core.Options{
		PageSize:    opts.PageSize,
		CacheSize:   opts.CacheSize,
		MinFill:     opts.MinFill,
		Workers:     opts.Workers,
		Compare:     opts.Comparator,
		TodoShards:  opts.MaintenanceShards,
		TodoSoftCap: opts.MaintenanceSoftCap,

		Durability:    opts.Durability,
		FlushInterval: opts.FlushInterval,
		FlushBytes:    opts.FlushBytes,

		Combining:        opts.Combining,
		CombineBuffer:    opts.CombineBuffer,
		CombineThreshold: opts.CombineThreshold,
		AppendFastPath:   opts.AppendFastPath,

		OptimisticReads: opts.OptimisticReads,
		BulkChunkPages:  opts.BulkChunkPages,
	}
	if opts.Workers < 0 {
		cOpts.Workers = core.WorkersNone
	}
	if opts.MaintenanceSoftCap < 0 {
		cOpts.TodoSoftCap = core.TodoSoftCapNone
	}
	if opts.CombineThreshold < 0 {
		cOpts.CombineThreshold = core.CombineAlways
	}
	cOpts.Observability = opts.Observability
	switch opts.Baseline {
	case BaselinePaper:
	case BaselineDrain:
		cOpts.DeletePolicy = core.Drain
	case BaselineSerialSMO:
		cOpts.SerializeSMO = true
	case BaselineNoDelete:
		cOpts.NoDeleteSupport = true
	default:
		return nil, errors.New("blinktree: unknown baseline")
	}

	t := &Tree{}
	if opts.Path != "" {
		pageSize := cOpts.PageSize
		if pageSize == 0 {
			pageSize = 4096
		}
		store, err := storage.OpenFileStore(filepath.Join(opts.Path, "pages.db"), pageSize)
		if err != nil {
			return nil, err
		}
		dev, err := wal.OpenFileDevice(filepath.Join(opts.Path, "wal.log"))
		if err != nil {
			store.Close()
			return nil, err
		}
		cOpts.Store = store
		cOpts.LogDevice = dev
		t.devClose = dev.Close
	}
	inner, err := core.New(cOpts)
	if err != nil {
		if t.devClose != nil {
			t.devClose()
		}
		return nil, err
	}
	t.inner = inner
	return t, nil
}

// Put inserts or replaces the record under key. Keys must be non-empty.
//
// Durability: the operation is write-ahead logged but the log is not
// forced, so a crash immediately after Put may lose it. It is guaranteed
// durable once any later FlushLog, Checkpoint, Close or transaction Commit
// succeeds; recovery never applies it partially.
func (t *Tree) Put(key, val []byte) error { return t.inner.Put(key, val) }

// Get returns a copy of the value under key, or ErrKeyNotFound.
func (t *Tree) Get(key []byte) ([]byte, error) { return t.inner.Get(key) }

// Has reports whether key is present.
func (t *Tree) Has(key []byte) (bool, error) { return t.inner.Has(key) }

// Delete removes the record under key, or returns ErrKeyNotFound.
//
// Durability: same contract as Put — logged immediately, durable at the
// next successful FlushLog, Checkpoint, Close or Commit.
func (t *Tree) Delete(key []byte) error { return t.inner.Delete(key) }

// Scan calls fn for each record in [start, end) in key order; fn returning
// false stops the scan. start nil/empty scans from the smallest key; end
// nil scans to the largest. No latches are held across fn calls.
func (t *Tree) Scan(start, end []byte, fn func(key, val []byte) bool) error {
	return t.inner.Scan(start, end, fn)
}

// ScanReverse calls fn for each record in [start, end) in descending key
// order. Backward iteration cannot ride side pointers, so each leaf
// boundary crossed costs one descent from the root.
func (t *Tree) ScanReverse(start, end []byte, fn func(key, val []byte) bool) error {
	return t.inner.ScanReverse(start, end, fn)
}

// Min returns the smallest record, or ErrKeyNotFound on an empty tree.
func (t *Tree) Min() (key, val []byte, err error) { return t.inner.Min() }

// Max returns the largest record, or ErrKeyNotFound on an empty tree.
func (t *Tree) Max() (key, val []byte, err error) { return t.inner.Max() }

// ScanPrefix calls fn for each record whose key begins with prefix, in
// ascending key order.
func (t *Tree) ScanPrefix(prefix []byte, fn func(key, val []byte) bool) error {
	return t.inner.Scan(prefix, prefixSuccessor(prefix), fn)
}

// prefixSuccessor returns the smallest key greater than every key with the
// given prefix, or nil (+inf) when no such key exists (all-0xFF prefix).
func prefixSuccessor(prefix []byte) []byte {
	end := append([]byte(nil), prefix...)
	for i := len(end) - 1; i >= 0; i-- {
		if end[i] != 0xFF {
			end[i]++
			return end[:i+1]
		}
	}
	return nil
}

// Count returns the number of records in [start, end).
func (t *Tree) Count(start, end []byte) (int, error) { return t.inner.Count(start, end) }

// BulkLoad populates an empty tree from strictly ascending (key, value)
// pairs, building it bottom-up at the given fill factor (0 < fill <= 1;
// 0 defaults to 0.85). Much faster than repeated Put. Returns an error on
// a non-empty tree or unsorted input. With a durable tree the whole load
// is one atomic, crash-recoverable action: it is logged as a sequence of
// chunk records sealed by a commit record, and recovery replays either all
// of it or none of it.
func (t *Tree) BulkLoad(next func() (key, val []byte, ok bool), fill float64) error {
	return t.inner.BulkLoad(next, fill)
}

// BulkLoadParallel is BulkLoad with parallel builder goroutines. The
// ascending stream is partitioned into contiguous key-range chunks built
// concurrently by up to parallel workers, each under a page-ID lease taken
// from the allocator up front; fences and side pointers are stitched across
// chunk seams and the upper index levels are built over the whole leaf
// level, so the resulting tree is structurally identical to a serial load's.
// parallel <= 1 degrades to the serial path. The durability contract is the
// same as BulkLoad's: all-or-nothing across any crash point.
func (t *Tree) BulkLoadParallel(next func() (key, val []byte, ok bool), fill float64, parallel int) error {
	return t.inner.BulkLoadParallel(next, fill, parallel)
}

// Len returns the total number of records.
func (t *Tree) Len() (int, error) { return t.inner.Len() }

// Cursor iterates records in key order without blocking writers between
// fetches.
type Cursor struct{ inner *core.Cursor }

// NewCursor returns a cursor over [start, end); end nil means +inf.
func (t *Tree) NewCursor(start, end []byte) *Cursor {
	return &Cursor{inner: t.inner.NewCursor(start, end)}
}

// Next returns the next record, or ok=false at the end of the range.
func (c *Cursor) Next() (key, val []byte, ok bool, err error) { return c.inner.Next() }

// Seek repositions the cursor so the next Next returns the first record
// with key >= target.
func (c *Cursor) Seek(target []byte) { c.inner.Seek(target) }

// Begin starts a transaction with strict two-phase record locking and
// crash-recoverable rollback.
func (t *Tree) Begin() (*Txn, error) {
	x, err := t.inner.Begin()
	if err != nil {
		return nil, err
	}
	return &Txn{inner: x}, nil
}

// Maintain synchronously runs all pending lazy structure modifications
// (index-term postings, consolidations). Useful with Workers: -1 and before
// measuring space utilization.
func (t *Tree) Maintain() { t.inner.DrainTodo() }

// Checkpoint flushes all dirty pages and writes a checkpoint record,
// bounding recovery time. No-op for volatile trees.
//
// Durability: a successful Checkpoint guarantees every operation that
// completed before the call survives any later crash.
func (t *Tree) Checkpoint() error { return t.inner.Checkpoint() }

// FlushLog forces every write-ahead log record appended so far to stable
// storage without taking a checkpoint. Cheaper than Checkpoint (no page
// flush); a successful return guarantees every completed operation survives
// any later crash, at the cost of a longer redo at the next open. Under
// DurabilityPeriodic and DurabilityAsync this is the explicit durability
// barrier: it makes every previously acknowledged commit durable,
// regardless of the background log-writer's progress. No-op for volatile
// trees.
func (t *Tree) FlushLog() error { return t.inner.FlushLog() }

// Verify checks the tree's structural invariants. The tree must be
// quiescent (no concurrent operations).
func (t *Tree) Verify() error {
	t.inner.DrainTodo()
	return t.inner.Verify()
}

// DeepReport is the audit summary returned by VerifyDeep: per-level node
// counts, record totals, live-versus-reachable page accounting, delete-state
// placement, and the durable log's LSN range and torn-tail observation.
type DeepReport = core.DeepReport

// VerifyDeep runs Verify plus the deep audits behind blinkcheck -deep: a
// whole-store page scan (every allocated page must checksum-verify, name
// itself and be reachable — an unreachable page is a leak), a delete-state
// placement audit (nonzero D_D only on level-1 nodes, paper §4), and WAL
// tail sanity (dense LSNs from 1; torn tails reported, not failed). The
// tree must be quiescent; pending maintenance is drained first.
func (t *Tree) VerifyDeep() (*DeepReport, error) {
	t.inner.DrainTodo()
	return t.inner.VerifyDeep()
}

// RecoveryStats reports what crash recovery found and did when the tree was
// opened: records scanned, redo/undo work, torn pages detected and whether
// the bounded redo had to restart from the head of the log. Recovered is
// false when the tree started fresh or without a log.
type RecoveryStats = core.RecoveryStats

// RecoveryStats returns the recovery statistics recorded at Open; the
// zero value for volatile or freshly created trees.
func (t *Tree) RecoveryStats() RecoveryStats { return t.inner.RecoveryStats() }

// Stats returns a snapshot of internal activity counters.
func (t *Tree) Stats() Stats { return Stats(t.inner.Stats()) }

// SchedulerStats returns a snapshot of the maintenance scheduler: shard
// layout, queue-depth high-water marks, backpressure and dedup activity,
// and the enqueue-to-process latency histogram.
func (t *Tree) SchedulerStats() SchedulerStats { return t.inner.SchedulerStats() }

// Snapshot returns the tree's full metrics in one consistent read. The
// histogram section (Metrics.Obs) is nil unless Options.Observability
// enabled metrics.
func (t *Tree) Snapshot() Metrics { return t.inner.Snapshot() }

// TraceEvents returns the buffered trace events, oldest first; nil unless
// Options.Observability enabled tracing. The ring is bounded and drops the
// oldest events under pressure (Snapshot reports how many).
func (t *Tree) TraceEvents() []TraceEvent { return t.inner.TraceEvents() }

// Spans returns the sampled operation spans, oldest first; nil unless
// Options.Observability enabled span sampling (Observability.Spans). The
// ring is bounded (Observability.SpanCapacity) and drops the oldest spans.
func (t *Tree) Spans() []OpTrace { return t.inner.Spans() }

// SlowSpans returns the slow-op flight recorder's contents, oldest first:
// the spans of operations whose latency met Observability.SlowOpThreshold
// (or the adaptive p999 default), including stage-less stubs for slow
// operations the sampler did not select. Nil unless span sampling is on.
func (t *Tree) SlowSpans() []OpTrace { return t.inner.SlowSpans() }

// LatchStats returns this tree's latch acquisition/wait counters.
func (t *Tree) LatchStats() LatchStats { return t.inner.LatchStats() }

// LatchStats mirrors the per-tree latch counters.
type LatchStats = latch.Stats

// Height returns the root level; a single-leaf tree has height 0.
func (t *Tree) Height() int { return int(t.inner.Height()) }

// Pages returns the number of live pages in the underlying store, the
// space-utilization measure the node-deletion machinery exists to keep low.
func (t *Tree) Pages() int { return t.inner.StoreStats().LivePages }

// Close flushes state, stops maintenance workers and releases resources.
//
// Durability: a successful Close makes every completed operation durable
// (pages flushed, log forced, store synced); reopening the same Path
// recovers the tree without redo work beyond the last checkpoint.
func (t *Tree) Close() error {
	err := t.inner.Close()
	if t.devClose != nil {
		if cerr := t.devClose(); err == nil {
			err = cerr
		}
	}
	return err
}

// Txn is a transaction: reads and writes acquire record locks held to
// commit (strict 2PL); Abort rolls every change back.
type Txn struct{ inner *core.Txn }

// ID returns the transaction identifier.
func (x *Txn) ID() uint64 { return x.inner.ID() }

// Get reads key under a shared record lock.
func (x *Txn) Get(key []byte) ([]byte, error) { return x.inner.Get(key) }

// Put writes key under an exclusive record lock.
func (x *Txn) Put(key, val []byte) error { return x.inner.Put(key, val) }

// Delete removes key under an exclusive record lock.
func (x *Txn) Delete(key []byte) error { return x.inner.Delete(key) }

// Savepoint marks the current point in the transaction for RollbackTo.
func (x *Txn) Savepoint() int { return x.inner.Savepoint() }

// RollbackTo undoes every operation performed after the savepoint, leaving
// the transaction active. Locks taken since are retained (strict 2PL).
func (x *Txn) RollbackTo(savepoint int) error { return x.inner.RollbackTo(savepoint) }

// Commit makes the transaction durable and releases its locks.
//
// Durability: the acknowledgement point depends on Options.Durability.
// Under DurabilitySync (the default) and DurabilityGroup a successful
// return means the transaction's writes — and every operation completed
// before it — survive any later crash; sync forces the log on this
// goroutine, group parks the commit on the log-writer and returns after
// the coalesced force covering its LSN. Under DurabilityPeriodic and
// DurabilityAsync Commit returns as soon as the commit record is appended;
// a crash before the next force loses the commit, and FlushLog is the
// explicit barrier that closes the window. In every mode recovery rolls
// back transactions that never committed.
func (x *Txn) Commit() error { return x.inner.Commit() }

// Abort rolls the transaction back and releases its locks.
func (x *Txn) Abort() error { return x.inner.Abort() }

// Stats mirrors the tree's internal activity counters; see the field
// comments on the internal definition for the paper sections each counter
// measures.
type Stats core.Stats

// SchedulerStats mirrors the maintenance scheduler's observability
// snapshot; see the internal definition for field semantics.
type SchedulerStats = core.SchedulerStats
