package blinktree_test

import (
	"fmt"

	"blinktree"
)

// Transactions use strict two-phase record locking; Abort rolls back every
// change, crash-recoverably on durable trees.
func ExampleTxn() {
	tree, _ := blinktree.Open(blinktree.Options{})
	defer tree.Close()
	tree.Put([]byte("balance"), []byte("100"))

	txn, _ := tree.Begin()
	txn.Put([]byte("balance"), []byte("0"))
	txn.Abort() // changed our mind

	v, _ := tree.Get([]byte("balance"))
	fmt.Println(string(v))
	// Output: 100
}

// ScanReverse iterates in descending key order.
func ExampleTree_ScanReverse() {
	tree, _ := blinktree.Open(blinktree.Options{})
	defer tree.Close()
	for _, k := range []string{"a", "b", "c", "d"} {
		tree.Put([]byte(k), []byte("v"))
	}
	tree.ScanReverse([]byte("b"), []byte("d"), func(k, _ []byte) bool {
		fmt.Println(string(k))
		return true
	})
	// Output:
	// c
	// b
}

// ScanPrefix visits every key sharing a prefix.
func ExampleTree_ScanPrefix() {
	tree, _ := blinktree.Open(blinktree.Options{})
	defer tree.Close()
	for _, k := range []string{"user/1", "user/2", "admin/1", "user!"} {
		tree.Put([]byte(k), []byte("v"))
	}
	tree.ScanPrefix([]byte("user/"), func(k, _ []byte) bool {
		fmt.Println(string(k))
		return true
	})
	// Output:
	// user/1
	// user/2
}

// BulkLoad builds a tree bottom-up from sorted input.
func ExampleTree_BulkLoad() {
	tree, _ := blinktree.Open(blinktree.Options{})
	defer tree.Close()
	i := 0
	tree.BulkLoad(func() ([]byte, []byte, bool) {
		if i >= 3 {
			return nil, nil, false
		}
		k := fmt.Sprintf("key-%d", i)
		i++
		return []byte(k), []byte("v"), true
	}, 0.9)
	n, _ := tree.Len()
	fmt.Println(n)
	// Output: 3
}
