// Quickstart: the five-minute tour of the blinktree public API — puts,
// gets, deletes, ordered scans, and a transaction with rollback.
package main

import (
	"fmt"
	"log"

	"blinktree"
)

func main() {
	// A volatile in-memory tree; pass Path for a durable one.
	tree, err := blinktree.Open(blinktree.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer tree.Close()

	// Basic operations.
	for _, kv := range [][2]string{
		{"cherry", "red"}, {"apple", "green"}, {"banana", "yellow"},
	} {
		if err := tree.Put([]byte(kv[0]), []byte(kv[1])); err != nil {
			log.Fatal(err)
		}
	}
	v, err := tree.Get([]byte("apple"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("apple = %s\n", v)

	// Ordered range scan (no latches held across callbacks).
	fmt.Println("all fruit in key order:")
	tree.Scan(nil, nil, func(k, v []byte) bool {
		fmt.Printf("  %s = %s\n", k, v)
		return true
	})

	// A transaction: strict two-phase locking, full rollback on abort.
	txn, err := tree.Begin()
	if err != nil {
		log.Fatal(err)
	}
	txn.Put([]byte("apple"), []byte("bruised"))
	txn.Delete([]byte("banana"))
	if err := txn.Abort(); err != nil { // changed our mind
		log.Fatal(err)
	}
	v, _ = tree.Get([]byte("apple"))
	n, _ := tree.Len()
	fmt.Printf("after rollback: apple = %s, %d records\n", v, n)

	if err := tree.Verify(); err != nil {
		log.Fatalf("invariant violation: %v", err)
	}
	fmt.Println("tree verified clean")
}
