// Inventory: the paper's motivating workload for node deletion (§1.3) —
// "dropping a set of products from an inventory database" and "purging
// out-of-date information".
//
// The program loads an inventory, purges discontinued product lines (a
// skewed delete pattern), and compares page occupancy between the paper's
// delete-state method and the drain baseline, which only deletes empty
// pages: the drain tree strands under-utilized pages, the delete-state tree
// consolidates them.
package main

import (
	"fmt"
	"log"

	"blinktree"
)

const (
	productLines    = 40
	productsPerLine = 500
)

func sku(line, item int) []byte {
	return []byte(fmt.Sprintf("sku-%03d-%05d", line, item))
}

func runScenario(name string, baseline blinktree.Baseline) {
	tree, err := blinktree.Open(blinktree.Options{
		PageSize: 1024,
		MinFill:  0.4,
		Baseline: baseline,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer tree.Close()

	// Load the catalog.
	for line := 0; line < productLines; line++ {
		for item := 0; item < productsPerLine; item++ {
			if err := tree.Put(sku(line, item), []byte("qty=100;loc=warehouse-7")); err != nil {
				log.Fatal(err)
			}
		}
	}
	tree.Maintain()
	before, _ := tree.Len()

	// Purge: discontinue 9 of every 10 items in every line (a scattered,
	// skewed delete pattern — drain's worst case: no leaf ever empties).
	for line := 0; line < productLines; line++ {
		for item := 0; item < productsPerLine; item++ {
			if item%10 != 0 {
				if err := tree.Delete(sku(line, item)); err != nil {
					log.Fatal(err)
				}
			}
		}
	}
	// Let lazy consolidation catch up (reads re-discover under-utilization).
	for r := 0; r < 4; r++ {
		tree.Maintain()
		tree.Has(sku(0, 0))
	}
	tree.Maintain()

	after, _ := tree.Len()
	s := tree.Stats()
	if err := tree.Verify(); err != nil {
		log.Fatalf("%s: invariant violation: %v", name, err)
	}
	fmt.Printf("%-14s records %d -> %d, consolidations=%d, splits=%d\n",
		name+":", before, after, s.LeafConsolidated+s.IndexConsolidated, s.Splits)
}

func main() {
	fmt.Printf("inventory purge: %d lines x %d products, 90%% discontinued\n\n",
		productLines, productsPerLine)
	runScenario("delete-state", blinktree.BaselinePaper)
	runScenario("drain", blinktree.BaselineDrain)
	fmt.Println("\nthe delete-state tree consolidates under-utilized pages;")
	fmt.Println("the drain tree cannot (no page ever empties under scattered deletes)")
}
