// Kvstore: a durable key/value store with write-ahead logging, transactions
// and crash recovery.
//
// The program runs in two phases against the same directory:
//
//  1. load  — commit a batch of accounts transactionally, then transfer
//     money between accounts, leaving one transfer deliberately
//     uncommitted, and exit WITHOUT a clean close.
//  2. check — reopen the directory: recovery replays committed work, rolls
//     back the in-flight transfer, and the balance invariant holds.
//
// Run with no arguments to execute both phases in sequence.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"os"

	"blinktree"
)

const accounts = 200

func accountKey(i int) []byte { return []byte(fmt.Sprintf("acct%06d", i)) }

func encode(balance uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], balance)
	return b[:]
}

func decode(b []byte) uint64 { return binary.BigEndian.Uint64(b) }

func load(dir string) {
	tree, err := blinktree.Open(blinktree.Options{Path: dir, PageSize: 1024})
	if err != nil {
		log.Fatal(err)
	}
	// Seed the accounts in one transaction: 1000 units each.
	txn, err := tree.Begin()
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < accounts; i++ {
		if err := txn.Put(accountKey(i), encode(1000)); err != nil {
			log.Fatal(err)
		}
	}
	if err := txn.Commit(); err != nil {
		log.Fatal(err)
	}

	// Committed transfers: move 10 units from account i to i+1.
	for i := 0; i < 50; i++ {
		txn, err := tree.Begin()
		if err != nil {
			log.Fatal(err)
		}
		from, _ := txn.Get(accountKey(i))
		to, _ := txn.Get(accountKey(i + 1))
		txn.Put(accountKey(i), encode(decode(from)-10))
		txn.Put(accountKey(i+1), encode(decode(to)+10))
		if err := txn.Commit(); err != nil {
			log.Fatal(err)
		}
	}

	// An in-flight transfer that never commits: recovery must undo it.
	inflight, err := tree.Begin()
	if err != nil {
		log.Fatal(err)
	}
	from, _ := inflight.Get(accountKey(0))
	inflight.Put(accountKey(0), encode(decode(from)-999))

	fmt.Println("load phase done: 51 committed transactions, 1 in flight")
	// Exit without Commit/Close: the process "crashes" here. Committed
	// transactions were flushed at commit; the in-flight one was not.
	os.Exit(0)
}

func check(dir string) {
	tree, err := blinktree.Open(blinktree.Options{Path: dir, PageSize: 1024})
	if err != nil {
		log.Fatalf("recovery failed: %v", err)
	}
	defer tree.Close()
	if err := tree.Verify(); err != nil {
		log.Fatalf("tree ill-formed after recovery: %v", err)
	}
	var total uint64
	n := 0
	tree.Scan(nil, nil, func(k, v []byte) bool {
		total += decode(v)
		n++
		return true
	})
	fmt.Printf("recovered %d accounts, total balance %d\n", n, total)
	if n != accounts || total != accounts*1000 {
		log.Fatalf("MONEY CONSERVATION VIOLATED: %d accounts, total %d (want %d, %d)",
			n, total, accounts, accounts*1000)
	}
	fmt.Println("money conserved: committed transfers applied, in-flight transfer rolled back")
}

func main() {
	if len(os.Args) > 1 {
		dir := os.Args[2]
		switch os.Args[1] {
		case "load":
			load(dir)
		case "check":
			check(dir)
		default:
			log.Fatalf("usage: %s [load|check dir]", os.Args[0])
		}
		return
	}
	// Both phases in one run: load in a subprocess so its exit models the
	// crash, then check here.
	dir, err := os.MkdirTemp("", "blinktree-kvstore")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	self, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	if out, err := runSelf(self, "load", dir); err != nil {
		log.Fatalf("load phase: %v\n%s", err, out)
	} else {
		fmt.Print(out)
	}
	check(dir)
}
