package main

import "os/exec"

// runSelf re-executes this binary for the load phase, whose abrupt exit
// models a crash.
func runSelf(self, phase, dir string) (string, error) {
	out, err := exec.Command(self, phase, dir).CombinedOutput()
	return string(out), err
}
