// Rangescan: cursors iterating a live tree (§3.1.4).
//
// Readers run ordered range scans with cursors — which hold no latches
// between fetches and use the re-latch procedure to resume — while writers
// concurrently insert and purge records, splitting and consolidating nodes
// under the scans. Every scan must observe keys in strict order.
package main

import (
	"bytes"
	"fmt"
	"log"
	"sync"
	"sync/atomic"

	"blinktree"
)

func key(i int) []byte { return []byte(fmt.Sprintf("event-%08d", i)) }

func main() {
	tree, err := blinktree.Open(blinktree.Options{PageSize: 1024, MinFill: 0.4})
	if err != nil {
		log.Fatal(err)
	}
	defer tree.Close()

	const n = 20000
	for i := 0; i < n; i++ {
		if err := tree.Put(key(i), []byte("payload")); err != nil {
			log.Fatal(err)
		}
	}
	tree.Maintain()

	var (
		wg           sync.WaitGroup
		scanned      atomic.Int64
		scans        atomic.Int64
		orderBroken  atomic.Int64
		writersDone  atomic.Bool
		deleted      atomic.Int64
		insertedHigh atomic.Int64
	)

	// Writers: purge the low half, append to the high end.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n/2; i++ {
			if err := tree.Delete(key(i)); err == nil {
				deleted.Add(1)
			}
		}
		writersDone.Store(true)
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := n; i < n+n/4; i++ {
			if err := tree.Put(key(i), []byte("payload")); err != nil {
				log.Fatal(err)
			}
			insertedHigh.Add(1)
		}
	}()

	// Readers: full ordered scans with cursors until writers finish.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(start int) {
			defer wg.Done()
			for !writersDone.Load() {
				cur := tree.NewCursor(key(start), nil)
				var prev []byte
				for {
					k, _, ok, err := cur.Next()
					if err != nil {
						log.Fatal(err)
					}
					if !ok {
						break
					}
					if prev != nil && bytes.Compare(prev, k) >= 0 {
						orderBroken.Add(1)
					}
					prev = append(prev[:0], k...)
					scanned.Add(1)
				}
				scans.Add(1)
			}
		}(r * 1000)
	}
	wg.Wait()

	if err := tree.Verify(); err != nil {
		log.Fatalf("invariant violation: %v", err)
	}
	final, _ := tree.Len()
	fmt.Printf("writers: deleted %d, appended %d\n", deleted.Load(), insertedHigh.Load())
	fmt.Printf("readers: %d full scans, %d records fetched, %d order violations\n",
		scans.Load(), scanned.Load(), orderBroken.Load())
	fmt.Printf("final records: %d, tree verified clean\n", final)
	if orderBroken.Load() != 0 {
		log.Fatal("ORDER VIOLATION under concurrent scans")
	}
}
