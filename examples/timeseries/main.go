// Timeseries: a metrics store on the blinktree — bulk-loaded history, live
// appends, "latest N" queries via reverse scans, and retention purge (the
// paper's "purging out-of-date information", §1.3) reclaiming pages through
// node consolidation.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"blinktree"
)

// pointKey encodes series/timestamp so points sort by series, then time.
func pointKey(series string, ts uint64) []byte {
	k := make([]byte, 0, len(series)+9)
	k = append(k, series...)
	k = append(k, 0)
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], ts)
	return append(k, b[:]...)
}

func main() {
	tree, err := blinktree.Open(blinktree.Options{PageSize: 1024, MinFill: 0.4})
	if err != nil {
		log.Fatal(err)
	}
	defer tree.Close()

	series := []string{"cpu", "disk", "mem"}
	const history = 30000

	// Bulk-load three series of historical points (sorted input).
	si, ts := 0, uint64(0)
	err = tree.BulkLoad(func() ([]byte, []byte, bool) {
		if si >= len(series) {
			return nil, nil, false
		}
		k := pointKey(series[si], ts)
		v := []byte(fmt.Sprintf("%.2f", float64(ts%97)))
		ts++
		if ts == history {
			ts = 0
			si++
		}
		return k, v, true
	}, 0.9)
	if err != nil {
		log.Fatal(err)
	}
	n, _ := tree.Len()
	fmt.Printf("bulk-loaded %d points across %d series\n", n, len(series))

	// Live appends.
	for t := uint64(history); t < history+500; t++ {
		for _, s := range series {
			if err := tree.Put(pointKey(s, t), []byte("live")); err != nil {
				log.Fatal(err)
			}
		}
	}

	// Latest 5 points of "cpu": a reverse scan from the series' end.
	fmt.Println("latest cpu points:")
	count := 0
	endOfCPU := pointKey("cpu", ^uint64(0))
	tree.ScanReverse(pointKey("cpu", 0), endOfCPU, func(k, v []byte) bool {
		tsPart := binary.BigEndian.Uint64(k[len(k)-8:])
		fmt.Printf("  t=%d value=%s\n", tsPart, v)
		count++
		return count < 5
	})

	// Retention: drop everything older than t=25000 in every series.
	pagesBefore := tree.Pages()
	for _, s := range series {
		tree.Scan(pointKey(s, 0), pointKey(s, 25000), func(k, _ []byte) bool {
			if err := tree.Delete(k); err != nil {
				log.Fatal(err)
			}
			return true
		})
	}
	for i := 0; i < 4; i++ {
		tree.Maintain()
		tree.Has(pointKey("cpu", history)) // re-discover under-utilization
	}
	tree.Maintain()
	pagesAfter := tree.Pages()
	left, _ := tree.Len()
	s := tree.Stats()
	fmt.Printf("retention purge: %d points remain; consolidations=%d\n",
		left, s.LeafConsolidated+s.IndexConsolidated)
	fmt.Printf("pages %d -> %d (height %d)\n", pagesBefore, pagesAfter, tree.Height())

	if err := tree.Verify(); err != nil {
		log.Fatalf("invariant violation: %v", err)
	}
	fmt.Println("tree verified clean")
}
